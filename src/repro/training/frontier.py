"""Level-synchronous HedgeCut tree growth (the frontier trainer).

The reference :class:`~repro.core.tree.TreeBuilder` grows one node at a
time: every candidate split of every node costs a kernel scan over the
node's rows, every accepted split physically re-partitions the per-tree
column copies, and deep levels degenerate into tens of thousands of tiny
numpy calls. This module grows *all growth points of one depth level at
once*:

1. **Histograms.** One composite-key ``bincount`` per feature yields the
   full ``(node, label, code)`` count tensor for the level
   (:class:`~repro.training.histogram.LevelHistograms`). Candidate
   statistics -- numeric prefix sums, categorical subset sums -- become
   lookups; the up-to-``B`` candidate re-draws of Algorithm 3 re-read the
   same tensors for free.
2. **Speculative vectorised trials.** Candidate features of every trial
   of every node are drawn in one random-key pass, split parameters in
   one grouped draw per feature, and every Gini gain of the level in one
   :func:`~repro.core.splits.gini_gain_arrays` call. The robustness
   pre-screen (the prune bound of
   :func:`~repro.core.robustness.is_robust`) runs vectorised over every
   ``(best, competitor)`` pair of the level
   (:func:`~repro.core.robustness.prescreen_robust_pairs`), and the
   near-ties the bound cannot decide run the full Algorithm 2 weakening
   loop batched (:func:`~repro.core.robustness.greedy_weaken_batch`).
   Retry trials (Algorithm 3's up-to-``B`` re-draws) are evaluated
   *speculatively*: nodes whose first trial was not accepted evaluate all
   remaining trials in one second batch, and the per-node outcome --
   first accepted trial wins, otherwise the last non-robust trial seeds a
   maintenance node -- is composed afterwards, reproducing the lazy
   sequential semantics exactly (later trials are independent draws, so
   evaluating them eagerly changes nothing but the wall-clock).
3. **Partition routing.** The level state carries physically partitioned
   per-level code/label/row arrays (the recursive builder's workspace
   trick, applied level-wise): children of every plain split of a level
   are routed with one vectorised stable partition -- a rank-and-scatter
   over the level's permutation -- so the histograms of the next level
   need no global gathers. Maintenance-node subtree variants append one
   partition per variant over the same row multiset, which is exactly
   the semantics of the recursive builder's repeated re-partitioning.

The grown trees obey the same algorithm with the same hyperparameters and
the same per-node verdict logic; they differ from the recursive builder's
trees for a given seed only because random draws are consumed in
breadth-first instead of depth-first order (the draw *distribution* is
identical -- see ``tests/training/test_frontier.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.nodes import Leaf, MaintenanceNode, SplitNode, SubtreeVariant, TreeNode
from repro.core.params import HedgeCutParams
from repro.core.robustness import greedy_weaken_batch, prescreen_robust_pairs
from repro.core.splits import (
    CategoricalSplit,
    NumericSplit,
    Split,
    SplitStats,
    gini_gain_arrays,
)
from repro.core.tree import (
    BuildCounters,
    CandidateSplit,
    HedgeCutTree,
    _random_split,
    judge_best,
)
from repro.dataprep.dataset import Dataset
from repro.training.histogram import LevelHistograms

#: ``maintenance_left`` sentinel for "unlimited" (``max_maintenance_depth
#: is None``); decremented never, compares ``> 0`` always.
_UNLIMITED = 1 << 30

#: Trial verdict codes (per (node, trial) unit).
_EMPTY = 0  # no candidate survived the splits-data filter
_ACCEPT = 1  # winner accepted (robust, or robustness not checked)
_SINGLETON = 2  # single candidate, accepted without a robustness test
_NON_ROBUST = 3  # winner has threats; trial rejected, candidates recorded
_REJECTED = 4  # "verified" mode re-draw request (untrusted, unaffordable)

_ACCEPTING = (_ACCEPT, _SINGLETON)


@dataclass
class _Level:
    """One frontier level: partitioned per-level arrays plus slot metadata.

    ``codes``/``labels`` are *level-ordered*: position ``i`` of every
    array describes the same record, and ``starts`` delimits each growth
    point's contiguous segment. Records may repeat across segments
    (maintenance variants see the same records); no global row identity
    is carried -- the trees only ever need counts and codes.
    """

    codes: list[np.ndarray]
    labels: np.ndarray
    starts: np.ndarray
    depth: int
    maintenance_left: list[int]
    attach: list[tuple[object, str] | None]

    @property
    def n_slots(self) -> int:
        return len(self.starts) - 1


@dataclass
class _LevelDecisions:
    """Per-slot outcomes of one level, kept as arrays.

    The overwhelmingly common outcomes (leaf, plain split) live in flat
    arrays so composing and materialising a level costs one python pass;
    only maintenance decisions (rare) carry python objects.
    """

    kind: np.ndarray  # (S,) int8: 0 leaf, 1 plain split, 2 maintenance
    feature: np.ndarray  # (S,) int64, split slots only
    param: np.ndarray  # (S,) int64 cut / subset mask (<= 62 bits)
    n_left: np.ndarray  # (S,) int64
    n_left_plus: np.ndarray  # (S,) int64
    capped: np.ndarray  # (S,) bool: split accepted under an exhausted cap
    random: np.ndarray  # (S,) bool: DaRE-style random top-d split
    wide_masks: dict[int, int]  # slot -> mask for wide categorical splits
    maintenance: dict[int, tuple[CandidateSplit, list[CandidateSplit]]]


_KIND_LEAF = 0
_KIND_SPLIT = 1
_KIND_MAINTENANCE = 2


@dataclass
class _TrialBatch:
    """Vectorised evaluation of one trial for a batch of (node, trial) units."""

    unit_slot: np.ndarray  # level slot per unit
    feat: np.ndarray  # (U, K) drawn feature per candidate, -1 undrawn
    param: np.ndarray  # (U, K) numeric cut or categorical mask (<= 62 bits)
    wide: dict[tuple[int, int], int]  # (unit, col) -> mask for wide domains
    n_left: np.ndarray  # (U, K)
    n_left_plus: np.ndarray  # (U, K)
    valid: np.ndarray  # (U, K) drawn and splits data
    gains: np.ndarray  # (U, K), -inf where invalid
    winner: np.ndarray  # (U,) column of the per-unit winner
    n_valid: np.ndarray  # (U,)
    robust: np.ndarray  # (U, K) per-competitor robust verdicts (greedy)
    verdict: np.ndarray  # (U,) trial verdict codes
    threats: dict[int, list[CandidateSplit]] = field(default_factory=dict)


class FrontierTreeBuilder:
    """Grows a single HedgeCut tree level-synchronously.

    Drop-in alternative to :class:`~repro.core.tree.TreeBuilder` (same
    constructor signature, same :meth:`build` contract), selected via
    ``HedgeCutParams.trainer="frontier"``.
    """

    def __init__(
        self, dataset: Dataset, params: HedgeCutParams, rng: np.random.Generator
    ) -> None:
        self.dataset = dataset
        self.params = params
        self.rng = rng
        self.budget = params.deletion_budget(dataset.n_rows)
        self.n_candidates = params.candidates_for(dataset.n_features)
        self.counters = BuildCounters()
        self.columns = [dataset.column(f) for f in range(dataset.n_features)]
        self.labels = dataset.labels
        self.n_values = [schema.n_values for schema in dataset.schema]
        self.numeric = [schema.is_numeric for schema in dataset.schema]

    def build(self) -> HedgeCutTree:
        root_ref: list[TreeNode | None] = [None]
        n_rows = self.dataset.n_rows
        root_maintenance = (
            _UNLIMITED
            if self.params.max_maintenance_depth is None
            else self.params.max_maintenance_depth
        )
        level: _Level | None = _Level(
            codes=list(self.columns),
            labels=self.labels,
            starts=np.asarray([0, n_rows], dtype=np.int64),
            depth=0,
            maintenance_left=[root_maintenance],
            attach=[None],
        )
        while level is not None:
            level = self._grow_level(level, root_ref)
        root = root_ref[0]
        assert root is not None
        return HedgeCutTree(root=root, counters=self.counters)

    # ------------------------------------------------------------------ #
    # level processing
    # ------------------------------------------------------------------ #

    def _grow_level(
        self, level: _Level, root_ref: list[TreeNode | None]
    ) -> _Level | None:
        hist = LevelHistograms(
            level.codes, level.labels, level.starts, self.n_values
        )
        decisions = self._decide_level(level, hist)
        return self._materialise_level(level, hist, decisions, root_ref)

    def _decide_level(
        self, level: _Level, hist: LevelHistograms
    ) -> _LevelDecisions:
        self.counters.max_depth = max(self.counters.max_depth, level.depth)
        n_slots = hist.n_slots
        node_n = hist.node_n
        node_plus = hist.node_plus
        # Per-slot label totals, kept for lazy candidate materialisation
        # (decisions reference them after the histograms go out of scope).
        self._hist_node_n = node_n
        self._hist_node_plus = node_plus
        ncm = hist.non_constant_matrix()
        nc_count = ncm.sum(axis=1)
        min_leaf = self.params.min_leaf_size

        leaf_mask = (
            (node_n <= min_leaf)
            | (node_plus == 0)
            | (node_plus == node_n)
            | (nc_count == 0)
        )
        decisions = _LevelDecisions(
            kind=np.full(n_slots, _KIND_LEAF, dtype=np.int8),
            feature=np.full(n_slots, -1, dtype=np.int64),
            param=np.zeros(n_slots, dtype=np.int64),
            n_left=np.zeros(n_slots, dtype=np.int64),
            n_left_plus=np.zeros(n_slots, dtype=np.int64),
            capped=np.zeros(n_slots, dtype=bool),
            random=np.zeros(n_slots, dtype=bool),
            wide_masks={},
            maintenance={},
        )
        pending = np.flatnonzero(~leaf_mask)
        if pending.size == 0:
            return decisions

        if level.depth < self.params.topd:
            pending = self._decide_random_slots(level, ncm, decisions, pending)
            if pending.size == 0:
                return decisions

        maintenance_left = np.asarray(level.maintenance_left, dtype=np.int64)
        check = np.zeros(pending.size, dtype=bool)
        if self.params.robustness_mode != "off":
            check = maintenance_left[pending] > 0
        budgets = np.minimum(self.budget, node_n - min_leaf)
        max_tries = self.params.max_tries_per_split

        # Phase A: one trial for every pending node (trial 0 of up to B for
        # robustness-checked nodes, the only trial for the rest).
        batch_a = self._eval_trials(pending, hist, ncm, nc_count, check, budgets)

        # Unchecked nodes run exactly one trial: accepted when any
        # candidate survived, a leaf otherwise. This is the overwhelming
        # bulk of a deep tree, so it composes vectorised.
        unchecked = np.flatnonzero(~check)
        if unchecked.size:
            self.counters.trials += int(unchecked.size)
            accepted = unchecked[batch_a.verdict[unchecked] == _ACCEPT]
            self.counters.empty_trials += int(unchecked.size - accepted.size)
            slots = pending[accepted]
            winners = batch_a.winner[accepted]
            decisions.kind[slots] = _KIND_SPLIT
            decisions.feature[slots] = batch_a.feat[accepted, winners]
            decisions.param[slots] = batch_a.param[accepted, winners]
            decisions.n_left[slots] = batch_a.n_left[accepted, winners]
            decisions.n_left_plus[slots] = batch_a.n_left_plus[accepted, winners]
            decisions.capped[slots] = maintenance_left[slots] <= 0
            if batch_a.wide:
                for (unit, col), mask in batch_a.wide.items():
                    if (
                        not check[unit]
                        and batch_a.verdict[unit] == _ACCEPT
                        and int(batch_a.winner[unit]) == col
                    ):
                        decisions.wide_masks[int(pending[unit])] = mask

        # Phase B: checked nodes whose first trial was not accepted draw
        # their remaining B-1 trials speculatively, all in one batch. Each
        # trial is an independent draw, so eager evaluation composes to the
        # same outcome as Algorithm 3's lazy retry loop.
        checked_units = np.flatnonzero(check)
        retry = checked_units[
            ~np.isin(batch_a.verdict[checked_units], _ACCEPTING)
        ]
        batch_b: _TrialBatch | None = None
        if retry.size and max_tries > 1:
            slots_b = np.repeat(pending[retry], max_tries - 1)
            batch_b = self._eval_trials(
                slots_b,
                hist,
                ncm,
                nc_count,
                np.ones(slots_b.size, dtype=bool),
                budgets,
            )
        retry_pos = {int(unit): index for index, unit in enumerate(retry)}

        for unit in checked_units:
            trials: list[tuple[_TrialBatch, int]] = [(batch_a, int(unit))]
            if int(unit) in retry_pos and batch_b is not None:
                base = retry_pos[int(unit)] * (max_tries - 1)
                trials.extend(
                    (batch_b, base + t) for t in range(max_tries - 1)
                )
            self._compose_checked(decisions, int(pending[unit]), trials)
        return decisions

    def _decide_random_slots(
        self,
        level: _Level,
        ncm: np.ndarray,
        decisions: _LevelDecisions,
        pending: np.ndarray,
    ) -> np.ndarray:
        """DaRE-style random decisions for the slots of a top-``d`` level.

        Scalar per slot -- a top-``d`` level holds at most ``2^topd``
        growth points, so there is nothing to vectorise. Each slot draws a
        uniform non-constant feature and a global-proposal split
        (:func:`~repro.core.tree._random_split`, the same distribution the
        recursive builder uses), retried up to ``B`` times; draws that do
        not separate the slot's local data are rejected. Slots with no
        valid draw are returned still-pending and fall through to the
        statistical trial machinery, mirroring the recursive builder's
        fall-through.
        """
        rng = self.rng
        starts = level.starts
        still_pending: list[int] = []
        for slot in pending.tolist():
            non_constant = np.flatnonzero(ncm[slot])
            segment = slice(int(starts[slot]), int(starts[slot + 1]))
            labels_seg = level.labels[segment]
            decided = False
            for _ in range(self.params.max_tries_per_split):
                feature = int(rng.choice(non_constant))
                split = _random_split(feature, self.dataset, rng)
                if split is None:
                    continue
                stats = split.count(level.codes[feature][segment], labels_seg)
                if not stats.splits_data:
                    continue
                self.counters.random_splits += 1
                decisions.kind[slot] = _KIND_SPLIT
                decisions.random[slot] = True
                decisions.feature[slot] = feature
                if isinstance(split, NumericSplit):
                    decisions.param[slot] = split.cut
                elif self.n_values[feature] <= 62:
                    decisions.param[slot] = split.subset_mask
                else:
                    decisions.wide_masks[slot] = split.subset_mask
                decisions.n_left[slot] = stats.n_left
                decisions.n_left_plus[slot] = stats.n_left_plus
                decided = True
                break
            if not decided:
                still_pending.append(slot)
        return np.asarray(still_pending, dtype=pending.dtype)

    def _compose_checked(
        self,
        decisions: _LevelDecisions,
        slot: int,
        trials: list[tuple[_TrialBatch, int]],
    ) -> None:
        """Fold a checked node's speculative trial verdicts into its decision.

        Reproduces the sequential retry loop: trials count as executed up
        to and including the first accepted one; with no acceptance the
        last non-robust trial seeds a maintenance node, and a node whose
        executed trials were all empty or rejected stays a leaf.
        """
        last_non_robust: tuple[_TrialBatch, int] | None = None
        for batch, unit in trials:
            verdict = int(batch.verdict[unit])
            self.counters.trials += 1
            if verdict == _EMPTY:
                self.counters.empty_trials += 1
            elif verdict == _REJECTED:
                self.counters.precondition_rejections += 1
            elif verdict == _NON_ROBUST:
                self.counters.robustness_rejections += 1
                last_non_robust = (batch, unit)
            else:
                if verdict == _SINGLETON:
                    self.counters.singleton_splits += 1
                winner = int(batch.winner[unit])
                decisions.kind[slot] = _KIND_SPLIT
                decisions.feature[slot] = int(batch.feat[unit, winner])
                decisions.param[slot] = int(batch.param[unit, winner])
                decisions.n_left[slot] = int(batch.n_left[unit, winner])
                decisions.n_left_plus[slot] = int(batch.n_left_plus[unit, winner])
                wide = batch.wide.get((unit, winner))
                if wide is not None:
                    decisions.wide_masks[slot] = wide
                return
        if last_non_robust is None:
            return  # leaf (every executed trial was empty or rejected)
        batch, unit = last_non_robust
        threats = self._threats(batch, unit)
        if threats:
            decisions.kind[slot] = _KIND_MAINTENANCE
            decisions.maintenance[slot] = (
                self._candidate(batch, unit, int(batch.winner[unit])),
                threats,
            )
            return
        # A maintenance decision with no surviving threats degrades to a
        # plain split of its winner (the recursive builder's fallback).
        winner = int(batch.winner[unit])
        decisions.kind[slot] = _KIND_SPLIT
        decisions.feature[slot] = int(batch.feat[unit, winner])
        decisions.param[slot] = int(batch.param[unit, winner])
        decisions.n_left[slot] = int(batch.n_left[unit, winner])
        decisions.n_left_plus[slot] = int(batch.n_left_plus[unit, winner])
        wide = batch.wide.get((unit, winner))
        if wide is not None:
            decisions.wide_masks[slot] = wide

    # ------------------------------------------------------------------ #
    # speculative trial evaluation
    # ------------------------------------------------------------------ #

    def _eval_trials(
        self,
        unit_slot: np.ndarray,
        hist: LevelHistograms,
        ncm: np.ndarray,
        nc_count: np.ndarray,
        check: np.ndarray,
        budgets: np.ndarray,
    ) -> _TrialBatch:
        """Evaluate one candidate-generation trial per unit, vectorised.

        Units are (node, trial) instances; ``unit_slot`` maps each to its
        level slot (slots repeat across retry trials). Every random draw
        matches the scalar :func:`~repro.core.tree._random_split`
        distribution -- features via random-key sampling without
        replacement, numeric cuts and categorical masks via grouped
        uniform draws -- only the generator consumption order differs.
        """
        n_units = unit_slot.size
        n_features = self.dataset.n_features
        width = min(self.n_candidates, n_features)
        rng = self.rng

        # Candidate features: random keys give each unit an independent
        # uniform permutation of its non-constant features; the first
        # min(k, #non-constant) entries are the drawn, ordered sample.
        keys = rng.random((n_units, n_features))
        keys[~ncm[unit_slot]] = np.inf
        order = np.argsort(keys, axis=1)
        k_unit = np.minimum(nc_count[unit_slot], width)
        feat = order[:, :width].astype(np.int64)
        drawn = np.arange(width)[None, :] < k_unit[:, None]
        feat[~drawn] = -1

        # Split parameters and candidate statistics, grouped per feature.
        param = np.zeros((n_units, width), dtype=np.int64)
        wide: dict[tuple[int, int], int] = {}
        n_left = np.zeros((n_units, width), dtype=np.int64)
        n_left_plus = np.zeros((n_units, width), dtype=np.int64)
        slot_matrix = np.broadcast_to(unit_slot[:, None], (n_units, width))
        for feature in range(n_features):
            sel = feat == feature
            count = int(np.count_nonzero(sel))
            if count == 0:
                continue
            n_values = self.n_values[feature]
            slots_here = slot_matrix[sel]
            if self.numeric[feature]:
                cuts = rng.integers(1, n_values, size=count)
                param[sel] = cuts
                cum_t, cum_p = hist._cumulative(feature)
                n_left[sel] = cum_t[slots_here, cuts - 1]
                n_left_plus[sel] = cum_p[slots_here, cuts - 1]
            elif n_values <= 62:
                masks = rng.integers(1, (1 << n_values) - 1, size=count)
                param[sel] = masks
                member = ((masks[:, None] >> np.arange(n_values)) & 1).astype(bool)
                n_left[sel] = np.sum(hist.totals[feature][slots_here] * member, axis=1)
                n_left_plus[sel] = np.sum(
                    hist.positives[feature][slots_here] * member, axis=1
                )
            else:
                # Wide categorical domains: scalar bit-draw loop, matching
                # the recursive builder's redraw-until-proper semantics.
                full = (1 << n_values) - 1
                units_here, cols_here = np.nonzero(sel)
                for unit, col in zip(units_here, cols_here):
                    mask = 0
                    while mask <= 0 or mask >= full:
                        bits = rng.random(n_values) < 0.5
                        mask = sum(1 << code for code in np.flatnonzero(bits))
                    wide[(int(unit), int(col))] = mask
                    member = ((mask >> np.arange(n_values)) & 1).astype(bool)
                    slot = int(unit_slot[unit])
                    n_left[unit, col] = hist.totals[feature][slot][member].sum()
                    n_left_plus[unit, col] = hist.positives[feature][slot][
                        member
                    ].sum()

        unit_n = hist.node_n[unit_slot][:, None]
        unit_plus = hist.node_plus[unit_slot][:, None]
        valid = drawn & (n_left > 0) & (n_left < unit_n)
        gains = gini_gain_arrays(
            np.broadcast_to(unit_n, valid.shape),
            np.broadcast_to(unit_plus, valid.shape),
            n_left,
            n_left_plus,
        )
        gains = np.where(valid, gains, -np.inf)
        # First-occurrence argmax over columns matches the scalar winner
        # rule max(key=(gain, -index)): invalid columns are -inf and the
        # compressed candidate order is the column order.
        winner = np.argmax(gains, axis=1)
        n_valid = valid.sum(axis=1)

        robust = np.ones((n_units, width), dtype=bool)
        verdict = np.full(n_units, _EMPTY, dtype=np.int8)
        verdict[(n_valid > 0) & ~check] = _ACCEPT
        verdict[(n_valid == 1) & check] = _SINGLETON

        batch = _TrialBatch(
            unit_slot=unit_slot,
            feat=feat,
            param=param,
            wide=wide,
            n_left=n_left,
            n_left_plus=n_left_plus,
            valid=valid,
            gains=gains,
            winner=winner,
            n_valid=n_valid,
            robust=robust,
            verdict=verdict,
        )
        judged = np.flatnonzero(check & (n_valid >= 2))
        if judged.size:
            self._judge_units(batch, judged, budgets)
        return batch

    def _judge_units(
        self, batch: _TrialBatch, judged: np.ndarray, budgets: np.ndarray
    ) -> None:
        """Robustness verdicts for every multi-candidate checked unit."""
        pair_unit, pair_col = np.nonzero(batch.valid[judged])
        pair_unit = judged[pair_unit]
        keep = pair_col != batch.winner[pair_unit]
        pair_unit, pair_col = pair_unit[keep], pair_col[keep]

        slot = batch.unit_slot[pair_unit]
        node_n = self._hist_node_n[slot]
        node_plus = self._hist_node_plus[slot]
        best_left = batch.n_left[pair_unit, batch.winner[pair_unit]]
        best_left_plus = batch.n_left_plus[pair_unit, batch.winner[pair_unit]]
        cand_left = batch.n_left[pair_unit, pair_col]
        cand_left_plus = batch.n_left_plus[pair_unit, pair_col]
        pair_budget = budgets[slot]

        screened = prescreen_robust_pairs(
            (node_n, node_plus, best_left, best_left_plus),
            (node_n, node_plus, cand_left, cand_left_plus),
            pair_budget,
        )
        if self.params.robustness_mode == "greedy":
            undecided = np.flatnonzero(~screened)
            if undecided.size:
                screened[undecided] = greedy_weaken_batch(
                    node_n[undecided],
                    node_plus[undecided],
                    best_left[undecided],
                    best_left_plus[undecided],
                    cand_left[undecided],
                    cand_left_plus[undecided],
                    pair_budget[undecided],
                )
            batch.robust[pair_unit, pair_col] = screened
            threatened = (batch.valid & ~batch.robust)[judged].any(axis=1)
            batch.verdict[judged] = np.where(threatened, _NON_ROBUST, _ACCEPT)
            return

        # Beam/verified modes keep the scalar judging path per unit; the
        # pre-screen still skips the provably robust pairs.
        batch.robust[pair_unit, pair_col] = screened
        for unit in judged:
            candidates, columns = self._candidate_list(batch, int(unit))
            best_col = int(batch.winner[unit])
            best_index = columns.index(best_col)
            prescreened = [bool(batch.robust[unit, col]) for col in columns]
            verdict, threats = judge_best(
                candidates[best_index],
                candidates,
                best_index,
                int(budgets[batch.unit_slot[unit]]),
                self.params.robustness_mode,
                prescreened_robust=prescreened,
            )
            if verdict == "robust":
                batch.verdict[unit] = _ACCEPT
            elif verdict == "rejected":
                batch.verdict[unit] = _REJECTED
            else:
                batch.verdict[unit] = _NON_ROBUST
                batch.threats[int(unit)] = threats

    # ------------------------------------------------------------------ #
    # candidate materialisation
    # ------------------------------------------------------------------ #

    def _make_split(self, batch: _TrialBatch, unit: int, col: int) -> Split:
        feature = int(batch.feat[unit, col])
        if self.numeric[feature]:
            return NumericSplit(feature=feature, cut=int(batch.param[unit, col]))
        mask = batch.wide.get((unit, col), None)
        if mask is None:
            mask = int(batch.param[unit, col])
        return CategoricalSplit(
            feature=feature, subset_mask=mask, cardinality=self.n_values[feature]
        )

    def _candidate(self, batch: _TrialBatch, unit: int, col: int) -> CandidateSplit:
        slot = int(batch.unit_slot[unit])
        return CandidateSplit(
            split=self._make_split(batch, unit, col),
            stats=SplitStats(
                int(self._hist_node_n[slot]),
                int(self._hist_node_plus[slot]),
                int(batch.n_left[unit, col]),
                int(batch.n_left_plus[unit, col]),
            ),
            gain=float(batch.gains[unit, col]),
        )

    def _candidate_list(
        self, batch: _TrialBatch, unit: int
    ) -> tuple[list[CandidateSplit], list[int]]:
        """The unit's surviving candidates in draw order, plus their columns."""
        columns = [int(col) for col in np.flatnonzero(batch.valid[unit])]
        return [self._candidate(batch, unit, col) for col in columns], columns

    def _threats(self, batch: _TrialBatch, unit: int) -> list[CandidateSplit]:
        """Competitors able to overtake the winner, in candidate order."""
        recorded = batch.threats.get(unit)
        if recorded is not None:
            return recorded
        winner = int(batch.winner[unit])
        return [
            self._candidate(batch, unit, int(col))
            for col in np.flatnonzero(batch.valid[unit] & ~batch.robust[unit])
            if int(col) != winner
        ]

    # ------------------------------------------------------------------ #
    # node materialisation and partition routing
    # ------------------------------------------------------------------ #

    def _materialise_level(
        self,
        level: _Level,
        hist: LevelHistograms,
        decisions: _LevelDecisions,
        root_ref: list[TreeNode | None],
    ) -> _Level | None:
        n_slots = level.n_slots
        starts = level.starts
        kind = decisions.kind

        # Pass 1: create and attach nodes; collect routing plans. Children
        # of plain splits are routed with one vectorised stable partition,
        # maintenance variants (rare) append per-variant partitions behind
        # them.
        leaf_slots = np.flatnonzero(kind == _KIND_LEAF)
        self.counters.leaves += int(leaf_slots.size)
        for slot in leaf_slots:
            self._attach(
                Leaf(n=int(hist.node_n[slot]), n_plus=int(hist.node_plus[slot])),
                level.attach[slot],
                root_ref,
            )

        split_slots = np.flatnonzero(kind == _KIND_SPLIT)
        maintenance_slots = np.flatnonzero(kind == _KIND_MAINTENANCE)
        if split_slots.size == 0 and maintenance_slots.size == 0:
            return None

        # Random top-d splits were already counted by _decide_random_slots.
        self.counters.robust_splits += int(
            split_slots.size - decisions.random[split_slots].sum()
        )
        self.counters.capped_maintenance += int(decisions.capped[split_slots].sum())
        split_nodes: list[SplitNode] = []
        for index in split_slots:
            slot = int(index)
            feature = int(decisions.feature[slot])
            if self.numeric[feature]:
                split: Split = NumericSplit(
                    feature=feature, cut=int(decisions.param[slot])
                )
            else:
                mask = decisions.wide_masks.get(slot, int(decisions.param[slot]))
                split = CategoricalSplit(
                    feature=feature,
                    subset_mask=mask,
                    cardinality=self.n_values[feature],
                )
            split_node = SplitNode(
                split=split,
                stats=SplitStats(
                    int(hist.node_n[slot]),
                    int(hist.node_plus[slot]),
                    int(decisions.n_left[slot]),
                    int(decisions.n_left_plus[slot]),
                ),
                left=None,
                right=None,
                random=bool(decisions.random[slot]),
            )
            self._attach(split_node, level.attach[slot], root_ref)
            split_nodes.append(split_node)

        maintenance: list[tuple[int, list[SubtreeVariant], int]] = []
        for index in maintenance_slots:
            slot = int(index)
            best, threats = decisions.maintenance[slot]
            self.counters.maintenance_nodes += 1
            variants = []
            for candidate in [best, *threats]:
                self.counters.variants_grown += 1
                variants.append(
                    SubtreeVariant(
                        split=candidate.split,
                        stats=candidate.stats,
                        left=None,
                        right=None,
                        gain=candidate.gain,
                    )
                )
            maintenance_node = MaintenanceNode(variants=variants)
            maintenance_node.rescore()
            self._attach(maintenance_node, level.attach[slot], root_ref)
            child_left = level.maintenance_left[slot]
            if child_left < _UNLIMITED:
                child_left -= 1
            maintenance.append((slot, variants, child_left))

        # Children whose leaf-ness is already decided by their split
        # statistics (too small, or label-pure) become leaves right here
        # and never enter the next level -- their rows are dropped from
        # the routing scatter and from every later histogram pass. Only
        # the leaf case the statistics cannot see (all features locally
        # constant) still travels. This matches the recursive builder's
        # entry test in ``_build_node`` exactly.
        min_leaf = self.params.min_leaf_size
        child_depth = level.depth + 1

        def keep_child(
            parent: object, side: str, child_n: int, child_plus: int
        ) -> bool:
            if child_n <= min_leaf or child_plus in (0, child_n):
                self.counters.max_depth = max(self.counters.max_depth, child_depth)
                self.counters.leaves += 1
                setattr(parent, side, Leaf(n=child_n, n_plus=child_plus))
                return False
            return True

        # Sizes and metadata of every *surviving* child segment of the
        # next level, in output order: plain-split children (left, right
        # per slot, slot order) first, then variant children. The keep
        # test over all split children runs vectorised (same predicate as
        # ``keep_child``); only the surviving segments and the pruned
        # leaves are visited in python.
        s_n = hist.node_n[split_slots]
        s_plus = hist.node_plus[split_slots]
        l_n = decisions.n_left[split_slots]
        l_plus = decisions.n_left_plus[split_slots]
        size_flat = np.empty(2 * split_slots.size, dtype=np.int64)
        size_flat[0::2] = l_n
        size_flat[1::2] = s_n - l_n
        plus_flat = np.empty_like(size_flat)
        plus_flat[0::2] = l_plus
        plus_flat[1::2] = s_plus - l_plus
        keep_flat = ~(
            (size_flat <= min_leaf) | (plus_flat == 0) | (plus_flat == size_flat)
        )
        order = np.cumsum(keep_flat) - keep_flat
        # Per split slot: index of the kept left/right child segment in
        # ``child_sizes`` order, -1 when the child became a leaf.
        left_index = np.full(n_slots, -1, dtype=np.int64)
        right_index = np.full(n_slots, -1, dtype=np.int64)
        left_index[split_slots] = np.where(keep_flat[0::2], order[0::2], -1)
        right_index[split_slots] = np.where(keep_flat[1::2], order[1::2], -1)

        pruned = np.flatnonzero(~keep_flat)
        if pruned.size:
            self.counters.max_depth = max(self.counters.max_depth, child_depth)
            self.counters.leaves += int(pruned.size)
            for flat in pruned:
                flat = int(flat)
                setattr(
                    split_nodes[flat >> 1],
                    "left" if flat % 2 == 0 else "right",
                    Leaf(n=int(size_flat[flat]), n_plus=int(plus_flat[flat])),
                )
        kept_children = np.flatnonzero(keep_flat)
        child_sizes = size_flat[kept_children].tolist()
        ml_flat = np.repeat(
            np.asarray(level.maintenance_left, dtype=np.int64)[split_slots], 2
        )
        next_maintenance = ml_flat[kept_children].tolist()
        next_attach: list[tuple[object, str] | None] = [
            (split_nodes[int(flat) >> 1], "left" if flat % 2 == 0 else "right")
            for flat in kept_children
        ]
        n_split_children = len(child_sizes)

        variant_plans: list[tuple[int, SubtreeVariant, bool, bool]] = []
        for slot, variants, child_left in maintenance:
            for variant in variants:
                stats = variant.stats
                plan = []
                sides = (
                    ("left", stats.n_left, stats.n_left_plus),
                    ("right", stats.n - stats.n_left,
                     stats.n_plus - stats.n_left_plus),
                )
                for side, child_n, child_plus in sides:
                    kept = keep_child(variant, side, child_n, child_plus)
                    plan.append(kept)
                    if kept:
                        child_sizes.append(child_n)
                        next_maintenance.append(child_left)
                        next_attach.append((variant, side))
                variant_plans.append((slot, variant, plan[0], plan[1]))

        next_starts = np.zeros(len(child_sizes) + 1, dtype=np.int64)
        np.cumsum(np.asarray(child_sizes, dtype=np.int64), out=next_starts[1:])
        total = int(next_starts[-1])
        if total == 0:
            return None

        # One trailing dump position absorbs dropped rows (pruned-leaf
        # children, segments routed elsewhere), so the scatter needs no
        # compaction pass; the level state keeps the ``total``-sized views.
        route_codes = [
            np.empty(total + 1, dtype=level.codes[feature].dtype)
            for feature in range(len(level.codes))
        ]
        route_labels = np.empty(total + 1, dtype=level.labels.dtype)
        next_codes = [codes[:total] for codes in route_codes]
        next_labels = route_labels[:total]

        if split_slots.size:
            self._route_plain_splits(
                level, decisions, next_starts,
                left_index, right_index,
                route_codes, route_labels,
            )

        cursor = int(next_starts[n_split_children])
        for slot, variant, keep_left, keep_right in variant_plans:
            if not keep_left and not keep_right:
                continue
            segment = slice(int(starts[slot]), int(starts[slot + 1]))
            seg_codes = [codes[segment] for codes in level.codes]
            seg_labels = level.labels[segment]
            goes_left = variant.split.goes_left_column(
                seg_codes[variant.split.feature]
            )
            for side_mask, kept in ((goes_left, keep_left), (~goes_left, keep_right)):
                if not kept:
                    continue
                size = int(np.count_nonzero(side_mask))
                out = slice(cursor, cursor + size)
                for feature, codes in enumerate(seg_codes):
                    next_codes[feature][out] = codes[side_mask]
                next_labels[out] = seg_labels[side_mask]
                cursor += size
        assert cursor == total

        return _Level(
            codes=next_codes,
            labels=next_labels,
            starts=next_starts,
            depth=child_depth,
            maintenance_left=next_maintenance,
            attach=next_attach,
        )

    def _route_plain_splits(
        self,
        level: _Level,
        decisions: _LevelDecisions,
        next_starts: np.ndarray,
        left_index: np.ndarray,
        right_index: np.ndarray,
        route_codes: list[np.ndarray],
        route_labels: np.ndarray,
    ) -> None:
        """Stable-partition every plain split's segment in one scatter.

        Per position of the level: a grouped (by feature) vectorised
        ``goes_left`` test, a prefix-sum rank inside the segment, and one
        destination index into the next level's arrays. Equivalent to the
        per-node boolean-mask routing, without the per-node numpy calls.
        Positions routed to a child that already became a leaf (its
        ``left_index``/``right_index`` entry is -1) are dropped. All index
        arithmetic runs in int32 (level sizes stay far below 2^31).
        """
        starts = level.starts.astype(np.int32)
        n_slots = level.n_slots
        level_size = int(starts[-1])
        slot_of_pos = np.repeat(
            np.arange(n_slots, dtype=np.int32), np.diff(starts)
        )
        seg_start = starts[slot_of_pos]

        is_split = decisions.kind == _KIND_SPLIT
        feature_of_slot = np.where(
            is_split, decisions.feature, -1
        ).astype(np.int32)
        # Start offset of each slot's kept children; -1 marks a dropped
        # (already-leafed) child whose rows leave the level state.
        next_starts32 = next_starts.astype(np.int32)
        left_start = np.where(
            left_index >= 0, next_starts32[left_index], np.int32(-1)
        ).astype(np.int32)
        right_start = np.where(
            right_index >= 0, next_starts32[right_index], np.int32(-1)
        ).astype(np.int32)

        left = np.zeros(level_size, dtype=bool)
        feature_of_pos = feature_of_slot[slot_of_pos]
        for feature in np.unique(feature_of_slot[feature_of_slot >= 0]):
            feature = int(feature)
            sel = feature_of_pos == feature
            codes_here = level.codes[feature][sel]
            if self.numeric[feature]:
                left[sel] = codes_here < decisions.param[slot_of_pos[sel]]
            elif self.n_values[feature] <= 62:
                masks = decisions.param[slot_of_pos[sel]]
                left[sel] = (masks >> codes_here.astype(np.int64)) & 1
        for slot, mask in decisions.wide_masks.items():
            if not is_split[slot]:
                continue
            feature = int(decisions.feature[slot])
            if self.n_values[feature] <= 62:
                continue  # narrow masks already routed via the param array
            member = np.asarray(
                [(mask >> value) & 1 for value in range(self.n_values[feature])],
                dtype=bool,
            )
            segment = slice(int(starts[slot]), int(starts[slot + 1]))
            left[segment] = member[level.codes[feature][segment]]

        exclusive = np.cumsum(left, dtype=np.int32)
        exclusive -= left
        rank_left = exclusive - exclusive[seg_start]
        rank_right = np.arange(level_size, dtype=np.int32)
        rank_right -= seg_start
        rank_right -= rank_left
        start_left = left_start[slot_of_pos]
        start_right = right_start[slot_of_pos]
        base = np.where(left, start_left, start_right)
        # Dropped positions (non-split slots and pruned-leaf children both
        # carry a -1 start offset) scatter to the dump position past the
        # level's end instead of being compacted away.
        dump = np.int32(route_labels.size - 1)
        dest = np.where(base >= 0, base + np.where(left, rank_left, rank_right), dump)
        for feature, codes in enumerate(level.codes):
            route_codes[feature][dest] = codes
        route_labels[dest] = level.labels

    @staticmethod
    def _attach(
        node: TreeNode,
        attach: tuple[object, str] | None,
        root_ref: list[TreeNode | None],
    ) -> None:
        if attach is None:
            root_ref[0] = node
        else:
            parent, side = attach
            setattr(parent, side, node)
