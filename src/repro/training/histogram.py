"""Per-level histogram store for the frontier trainers.

The frontier trainers grow all nodes of one tree depth at a time. For a
level holding ``n_slots`` growth points, :class:`LevelHistograms` computes,
per feature, the full ``(node, label, code)`` count tensor with a single
composite-key ``bincount`` pass
(:func:`repro.vectorized.kernels.frontier_joint_histogram`). Everything
any split candidate could ask about the level is then a lookup into those
tensors:

* local constancy of a feature at a node (one non-empty code bin),
* numeric cut statistics (prefix sums over the code axis),
* categorical subset statistics (masked sums over the code axis),
* per-node label totals (``n``, ``n_plus``).

The constructor takes *level-ordered* code and label arrays -- the
HedgeCut frontier trainer carries physically partitioned per-level copies
down the tree, so no global gather happens per level; builders that keep
global row indices instead (the baseline frontier cores) use
:meth:`LevelHistograms.from_rows`, which gathers once and delegates. This
is the LightGBM-style "bin once, scan histograms" training layout,
adapted to pre-binned integer codes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.vectorized.kernels import frontier_joint_histogram


class LevelHistograms:
    """Count tensors of one frontier level.

    Args:
        codes: one level-ordered 1-D code array per feature (position
            ``i`` of every array describes the same record).
        labels: level-ordered 0/1 label array.
        starts: ``n_slots + 1`` offsets delimiting each growth point's
            segment inside the level arrays. Record positions may repeat
            across growth points upstream (maintenance-node subtree
            variants see the same records); the histograms only care
            about the per-segment contents.
        n_values: global code-domain size per feature.
        rows: optional level-ordered global row indices, carried for
            callers that route by row identity (baseline cores, tests).
    """

    def __init__(
        self,
        codes: Sequence[np.ndarray],
        labels: np.ndarray,
        starts: np.ndarray,
        n_values: Sequence[int],
        rows: np.ndarray | None = None,
    ) -> None:
        self.n_slots = len(starts) - 1
        self.n_features = len(codes)
        self.n_values = tuple(int(v) for v in n_values)
        self.codes = list(codes)
        self.labels = labels
        self.rows = rows
        self.starts = starts

        counts = np.diff(starts)
        slots = np.repeat(np.arange(self.n_slots, dtype=np.int32), counts)
        #: ``slot * 2 + label`` per position: the feature-independent part
        #: of every composite histogram key, computed once per level.
        self.label_slots = slots * np.int32(2)
        self.label_slots += labels.astype(np.int32, copy=False)

        node_hist = np.bincount(
            self.label_slots, minlength=self.n_slots * 2
        ).reshape(self.n_slots, 2)
        self.node_n = node_hist.sum(axis=1)
        self.node_plus = node_hist[:, 1]

        #: Per-feature ``(n_slots, n_values)`` total counts.
        self.totals: list[np.ndarray] = []
        #: Per-feature ``(n_slots, n_values)`` positive counts.
        self.positives: list[np.ndarray] = []
        for feature in range(self.n_features):
            hist = frontier_joint_histogram(
                self.label_slots, self.codes[feature], self.n_slots,
                self.n_values[feature],
            )
            self.totals.append(hist.sum(axis=1))
            self.positives.append(hist[:, 1, :])

        self._cum_totals: list[np.ndarray | None] = [None] * self.n_features
        self._cum_positives: list[np.ndarray | None] = [None] * self.n_features

    @classmethod
    def from_rows(
        cls,
        columns: Sequence[np.ndarray],
        labels: np.ndarray,
        rows: np.ndarray,
        starts: np.ndarray,
        n_values: Sequence[int],
    ) -> "LevelHistograms":
        """Build from global columns plus concatenated row indices."""
        gathered = [column[rows] for column in columns]
        return cls(gathered, labels[rows], starts, n_values, rows=rows)

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #

    def non_constant_matrix(self) -> np.ndarray:
        """``(n_slots, n_features)`` bool: locally more than one code."""
        out = np.empty((self.n_slots, self.n_features), dtype=bool)
        for feature in range(self.n_features):
            out[:, feature] = (self.totals[feature] > 0).sum(axis=1) > 1
        return out

    def _cumulative(self, feature: int) -> tuple[np.ndarray, np.ndarray]:
        """Prefix sums over the code axis (cached per feature per level)."""
        cum_t = self._cum_totals[feature]
        if cum_t is None:
            cum_t = np.cumsum(self.totals[feature], axis=1)
            self._cum_totals[feature] = cum_t
            self._cum_positives[feature] = np.cumsum(self.positives[feature], axis=1)
        cum_p = self._cum_positives[feature]
        assert cum_p is not None
        return cum_t, cum_p

    def numeric_counts(self, feature: int, slot: int, cut: int) -> tuple[int, int]:
        """``(n_left, n_left_plus)`` of ``code < cut`` at one growth point."""
        cum_t, cum_p = self._cumulative(feature)
        return int(cum_t[slot, cut - 1]), int(cum_p[slot, cut - 1])

    def threshold_counts(self, feature: int) -> tuple[np.ndarray, np.ndarray]:
        """``(n_left, n_left_plus)`` for every ordinal threshold, all slots.

        Threshold semantics are the baselines' ``code <= t`` (the last
        threshold, which sends everything left, is excluded). Shapes are
        ``(n_slots, n_values - 1)``.
        """
        cum_t, cum_p = self._cumulative(feature)
        return cum_t[:, :-1], cum_p[:, :-1]

    def subset_counts(
        self, feature: int, slot: int, member: np.ndarray
    ) -> tuple[int, int]:
        """``(n_left, n_left_plus)`` of ``code in subset`` at a growth point.

        ``member`` is the boolean membership table of the subset bitmask
        over the feature's code domain.
        """
        totals_row = self.totals[feature][slot]
        positives_row = self.positives[feature][slot]
        return int(totals_row[member].sum()), int(positives_row[member].sum())

    def local_ranges(self, feature: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-slot ``(min_code, max_code)`` of a feature (empty slots: 0, -1)."""
        present = self.totals[feature] > 0
        any_present = present.any(axis=1)
        first = np.argmax(present, axis=1)
        last = self.n_values[feature] - 1 - np.argmax(present[:, ::-1], axis=1)
        first = np.where(any_present, first, 0)
        last = np.where(any_present, last, -1)
        return first, last

    def segment(self, slot: int) -> slice:
        """Positions of one growth point inside the level arrays."""
        return slice(int(self.starts[slot]), int(self.starts[slot + 1]))
