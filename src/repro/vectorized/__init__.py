"""Scan kernels for Gini-gain counting (Section 5 of the paper).

The computational core of tree learning is counting, for a candidate split
over a sample of ``n`` records, how many records are positive, how many land
in the left partition, and how many positives land in each partition. The
paper implements this with SSE SIMD intrinsics in Rust and benchmarks four
variants (Section 6.4.2):

1. scalar code with branches,
2. scalar code with branches removed via *predication*,
3. the vectorised SIMD implementation,
4. an mlpack-style implementation that vectorises only the per-class count
   summation.

This package reproduces the same four code shapes in Python. The
"vectorised" tier uses numpy bulk operations, which dispatch to
SIMD-enabled C loops -- the closest faithful equivalent of hand-written
intrinsics available in a pure-Python environment. All kernels are
observationally identical; the micro-benchmark in
``benchmarks/test_sec642_vectorisation.py`` measures their relative speed.
"""

from repro.vectorized.kernels import (
    SplitCounts,
    categorical_counts_branching,
    categorical_counts_mlpack,
    categorical_counts_predicated,
    categorical_counts_vectorised,
    numeric_counts_branching,
    numeric_counts_mlpack,
    numeric_counts_predicated,
    numeric_counts_vectorised,
)
from repro.vectorized.masks import subset_to_bitmask, bitmask_contains, bitmask_to_subset

__all__ = [
    "SplitCounts",
    "numeric_counts_branching",
    "numeric_counts_predicated",
    "numeric_counts_vectorised",
    "numeric_counts_mlpack",
    "categorical_counts_branching",
    "categorical_counts_predicated",
    "categorical_counts_vectorised",
    "categorical_counts_mlpack",
    "subset_to_bitmask",
    "bitmask_contains",
    "bitmask_to_subset",
]
