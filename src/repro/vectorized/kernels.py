"""The four Gini-count scan kernels of Section 6.4.2.

Every kernel computes the same :class:`SplitCounts` quadruple
``(n, n_plus, n_left, n_left_plus)`` from a code column, a label column and
a split description. They differ only in code shape:

* ``*_branching``      -- scalar loop with data-dependent branches,
* ``*_predicated``     -- scalar loop with branches replaced by boolean
  arithmetic (predication, Section 5 "Further optimisations"),
* ``*_vectorised``     -- numpy bulk compare + mask + popcount, the analogue
  of the paper's SSE implementation,
* ``*_mlpack``         -- the mlpack-inspired variant that materialises the
  per-record partition assignment first and vectorises only the per-class
  count summation afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.vectorized.masks import bitmask_membership_vector


@dataclass(frozen=True)
class SplitCounts:
    """Counts a split evaluation needs for the Gini gain (Section 5).

    Attributes:
        n: number of records scanned.
        n_plus: number of positive records.
        n_left: records assigned to the left partition.
        n_left_plus: positive records assigned to the left partition.
    """

    n: int
    n_plus: int
    n_left: int
    n_left_plus: int

    @property
    def n_right(self) -> int:
        return self.n - self.n_left

    @property
    def n_right_plus(self) -> int:
        return self.n_plus - self.n_left_plus

    @property
    def splits_data(self) -> bool:
        """Whether both partitions are non-empty.

        Global split proposals may fall outside the local value range of a
        node; such degenerate candidates are ignored during training
        (Section 4.3).
        """
        return 0 < self.n_left < self.n


# --------------------------------------------------------------------- #
# numeric splits: left partition is  code < cut
# --------------------------------------------------------------------- #


def numeric_counts_branching(codes: np.ndarray, labels: np.ndarray, cut: int) -> SplitCounts:
    """Scalar loop with branches (the paper's non-optimised baseline)."""
    n = len(codes)
    n_plus = 0
    n_left = 0
    n_left_plus = 0
    for index in range(n):
        positive = labels[index] == 1
        if positive:
            n_plus += 1
        if codes[index] < cut:
            n_left += 1
            if positive:
                n_left_plus += 1
    return SplitCounts(n, n_plus, n_left, n_left_plus)


def numeric_counts_predicated(codes: np.ndarray, labels: np.ndarray, cut: int) -> SplitCounts:
    """Scalar loop with predication: branches become boolean additions."""
    n = len(codes)
    n_plus = 0
    n_left = 0
    n_left_plus = 0
    for index in range(n):
        positive = int(labels[index] == 1)
        goes_left = int(codes[index] < cut)
        n_plus += positive
        n_left += goes_left
        n_left_plus += positive & goes_left
    return SplitCounts(n, n_plus, n_left, n_left_plus)


def numeric_counts_vectorised(codes: np.ndarray, labels: np.ndarray, cut: int) -> SplitCounts:
    """Bulk compare + mask + popcount -- the SSE analogue.

    ``codes < cut`` corresponds to ``_mm_cmplt_epi8`` over the uint8 column,
    the boolean AND with the label vector to the SIMD AND of the paper, and
    ``count_nonzero`` to the POPCNT reduction.
    """
    goes_left = codes < cut
    positive = labels == 1
    n = codes.shape[0]
    n_plus = int(np.count_nonzero(positive))
    n_left = int(np.count_nonzero(goes_left))
    n_left_plus = int(np.count_nonzero(goes_left & positive))
    return SplitCounts(n, n_plus, n_left, n_left_plus)


def numeric_counts_mlpack(codes: np.ndarray, labels: np.ndarray, cut: int) -> SplitCounts:
    """mlpack-style kernel: scalar partition test, vectorised class sums.

    mlpack's Gini-gain routine was designed for classical decision trees
    where label-count summation dominates; it vectorises only that final
    reduction while the per-record threshold comparison stays scalar. The
    paper re-implements it for comparison and finds almost no speed-up over
    the branching code (Section 6.4.2), because for ERT-style candidate
    evaluation the comparison itself is the bottleneck.
    """
    n = len(codes)
    assignment = np.empty(n, dtype=np.uint8)
    for index in range(n):
        assignment[index] = 1 if codes[index] < cut else 0
    left = assignment == 1
    n_plus = int(np.count_nonzero(labels == 1))
    n_left = int(np.count_nonzero(left))
    n_left_plus = int(np.count_nonzero(labels[left] == 1))
    return SplitCounts(n, n_plus, n_left, n_left_plus)


# --------------------------------------------------------------------- #
# categorical splits: left partition is  code in subset (bitmask)
# --------------------------------------------------------------------- #


def categorical_counts_branching(
    codes: np.ndarray, labels: np.ndarray, subset_mask: int
) -> SplitCounts:
    """Scalar loop with branches for the subset-membership test."""
    n = len(codes)
    n_plus = 0
    n_left = 0
    n_left_plus = 0
    for index in range(n):
        positive = labels[index] == 1
        if positive:
            n_plus += 1
        if (subset_mask >> int(codes[index])) & 1:
            n_left += 1
            if positive:
                n_left_plus += 1
    return SplitCounts(n, n_plus, n_left, n_left_plus)


def categorical_counts_predicated(
    codes: np.ndarray, labels: np.ndarray, subset_mask: int
) -> SplitCounts:
    """Predicated scalar loop for the subset-membership test."""
    n = len(codes)
    n_plus = 0
    n_left = 0
    n_left_plus = 0
    for index in range(n):
        positive = int(labels[index] == 1)
        goes_left = (subset_mask >> int(codes[index])) & 1
        n_plus += positive
        n_left += goes_left
        n_left_plus += positive & goes_left
    return SplitCounts(n, n_plus, n_left, n_left_plus)


def categorical_counts_vectorised(
    codes: np.ndarray, labels: np.ndarray, subset_mask: int
) -> SplitCounts:
    """Vectorised membership via bulk bit tests.

    The paper's SIMD version tests four 32-bit codes per instruction against
    the subset bitmask; the numpy analogue shifts the mask by the whole code
    column at once (masks up to 63 bits), falling back to a materialised
    membership table for wider domains.
    """
    if subset_mask < (1 << 63):
        goes_left = (subset_mask >> codes.astype(np.int64)) & 1 == 1
    else:
        cardinality = int(codes.max(initial=0)) + 1
        table = bitmask_membership_vector(subset_mask, cardinality)
        goes_left = table[codes.astype(np.int64)]
    positive = labels == 1
    n = codes.shape[0]
    n_plus = int(np.count_nonzero(positive))
    n_left = int(np.count_nonzero(goes_left))
    n_left_plus = int(np.count_nonzero(goes_left & positive))
    return SplitCounts(n, n_plus, n_left, n_left_plus)


def categorical_counts_mlpack(
    codes: np.ndarray, labels: np.ndarray, subset_mask: int
) -> SplitCounts:
    """mlpack-style categorical kernel (scalar test, vectorised sums)."""
    n = len(codes)
    assignment = np.empty(n, dtype=np.uint8)
    for index in range(n):
        assignment[index] = (subset_mask >> int(codes[index])) & 1
    left = assignment == 1
    n_plus = int(np.count_nonzero(labels == 1))
    n_left = int(np.count_nonzero(left))
    n_left_plus = int(np.count_nonzero(labels[left] == 1))
    return SplitCounts(n, n_plus, n_left, n_left_plus)


# --------------------------------------------------------------------- #
# frontier histograms: whole-level counts via composite-key bincount
# --------------------------------------------------------------------- #


def frontier_histogram(
    slots: np.ndarray,
    codes: np.ndarray,
    labels: np.ndarray,
    n_slots: int,
    n_values: int,
) -> np.ndarray:
    """``(node, code, label)`` count tensor for one feature over a level.

    This is the histogram kernel of the level-synchronous frontier trainer
    (LightGBM-style): instead of one scan per (node, candidate), a single
    ``bincount`` over the composite key ``(slot * n_values + code) * 2 +
    label`` yields every count any candidate split of this feature could
    need, for every frontier node at once. Candidate evaluation then reads
    the tiny per-node histogram rows instead of re-scanning records.

    Args:
        slots: dense frontier-slot index per record position, in
            ``[0, n_slots)``.
        codes: feature code per record position.
        labels: 0/1 label per record position.
        n_slots: number of frontier nodes in the level.
        n_values: global code domain size of the feature.

    Returns:
        int64 tensor of shape ``(n_slots, n_values, 2)``; ``[..., 0]``
        counts negatives, ``[..., 1]`` positives.
    """
    key = (slots.astype(np.int64) * n_values + codes.astype(np.int64)) * 2
    key += labels.astype(np.int64)
    flat = np.bincount(key, minlength=n_slots * n_values * 2)
    return flat.reshape(n_slots, n_values, 2)


def frontier_joint_histogram(
    label_slots: np.ndarray,
    codes: np.ndarray,
    n_slots: int,
    n_values: int,
) -> np.ndarray:
    """``(node, label, code)`` count tensor for one feature over a level.

    Faster layout of :func:`frontier_histogram` for the frontier trainer's
    hot path: the caller precomputes ``label_slots = slot * 2 + label``
    *once per level* (it is feature-independent), so the per-feature work
    shrinks to one fused multiply-add over int32 keys plus the
    ``bincount``. int32 keys halve the arithmetic traffic of the int64
    path; level sizes and code domains keep ``2 * n_slots * n_values``
    far below the int32 range.

    Returns:
        int64 tensor of shape ``(n_slots, 2, n_values)``; ``[:, 0]``
        counts negatives, ``[:, 1]`` positives.
    """
    n_bins = n_slots * 2 * n_values
    if n_bins < np.iinfo(np.int32).max:
        key = label_slots * np.int32(n_values)
        key += codes
    else:
        key = label_slots.astype(np.int64) * n_values
        key += codes
    flat = np.bincount(key, minlength=n_bins)
    return flat.reshape(n_slots, 2, n_values)


def frontier_label_counts(
    slots: np.ndarray, labels: np.ndarray, n_slots: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-frontier-node ``(n, n_plus)`` via one composite-key bincount."""
    key = slots.astype(np.int64) * 2 + labels.astype(np.int64)
    flat = np.bincount(key, minlength=n_slots * 2).reshape(n_slots, 2)
    return flat.sum(axis=1), flat[:, 1]


#: Kernel registries used by the 6.4.2 micro-benchmark and the equivalence
#: property tests.
NUMERIC_KERNELS = {
    "branching": numeric_counts_branching,
    "predicated": numeric_counts_predicated,
    "vectorised": numeric_counts_vectorised,
    "mlpack": numeric_counts_mlpack,
}

CATEGORICAL_KERNELS = {
    "branching": categorical_counts_branching,
    "predicated": categorical_counts_predicated,
    "vectorised": categorical_counts_vectorised,
    "mlpack": categorical_counts_mlpack,
}
