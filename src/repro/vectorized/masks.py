"""Bitmask subset representation for categorical splits.

Categorical splits in HedgeCut test whether a record's category code is a
member of a randomly chosen subset of the feature's domain. For domains of
cardinality up to 32 the subset is a ``uint32`` bitmask and the membership
test is ``(1 << code) & mask != 0`` -- exactly the layout the paper's Rust
SIMD kernel operates on.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.dataprep.dataset import BITMASK_MAX_CARDINALITY


def subset_to_bitmask(codes: Iterable[int]) -> int:
    """Pack category codes (< 32) into a uint32 bitmask."""
    mask = 0
    for code in codes:
        if not 0 <= code < BITMASK_MAX_CARDINALITY:
            raise ValueError(
                f"code {code} does not fit a {BITMASK_MAX_CARDINALITY}-bit mask"
            )
        mask |= 1 << code
    return mask


def bitmask_contains(mask: int, code: int) -> bool:
    """Membership test for a single code against a bitmask."""
    return bool((mask >> code) & 1)


def bitmask_to_subset(mask: int) -> frozenset[int]:
    """Unpack a bitmask back into the set of codes it contains."""
    return frozenset(
        code for code in range(BITMASK_MAX_CARDINALITY) if (mask >> code) & 1
    )


def bitmask_membership_vector(mask: int, cardinality: int) -> np.ndarray:
    """Boolean lookup table ``table[code] -> code in mask`` of given length.

    The vectorised categorical kernel indexes this table with the whole code
    column at once, mirroring how the SIMD version tests four 32-bit values
    per instruction.

    The function is deliberately **uncached**: it used to sit behind a
    process-global ``lru_cache``, which meant (a) a freshly spawned serving
    process started with a cold cache and paid the materialisation stalls
    on its first categorical-heavy request, and (b) every model in the
    process transparently shared cached rows keyed only by
    ``(mask, cardinality)``. Hot callers now pre-materialise the table
    per *split instance* instead (:meth:`repro.core.splits.
    CategoricalSplit.membership_table`), so the rows are plain per-model
    arrays that travel with the model into forked/spawned workers and can
    never alias across models. The returned array is read-only; callers
    that need to mutate it must copy.
    """
    codes = np.arange(cardinality, dtype=np.int64)
    table = ((mask >> codes) & 1).astype(bool)
    table.setflags(write=False)
    return table
