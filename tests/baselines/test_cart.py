"""Tests for the CART decision-tree baseline."""

import numpy as np
import pytest

from repro.baselines.cart import DecisionTreeClassifier
from repro.core.exceptions import NotFittedError

from tests.conftest import make_random_dataset


class TestValidation:
    def test_rejects_bad_min_samples_split(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)

    def test_rejects_bad_min_samples_leaf(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)

    def test_rejects_unknown_max_features(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features="log2")

    def test_predict_requires_fit(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.asarray([0]))


class TestLearning:
    def test_fits_training_data_to_the_achievable_optimum(self):
        dataset = make_random_dataset(n_rows=200, seed=1)
        tree = DecisionTreeClassifier().fit(dataset)
        predictions = tree.predict_batch(dataset)
        accuracy = float(np.mean(predictions == dataset.labels))
        # A fully grown CART partitions until every leaf is pure in features,
        # so its training accuracy equals the best achievable by any
        # deterministic classifier: per feature-combination majority.
        matrix = dataset.feature_matrix()
        combos = {}
        for row in range(dataset.n_rows):
            key = tuple(matrix[row])
            combos.setdefault(key, []).append(int(dataset.labels[row]))
        achievable = sum(
            max(labels.count(0), labels.count(1)) for labels in combos.values()
        ) / dataset.n_rows
        assert accuracy == pytest.approx(achievable)

    def test_beats_majority_on_heldout(self, income_split):
        train, test = income_split
        tree = DecisionTreeClassifier().fit(train)
        predictions = tree.predict_batch(test)
        majority = max(float(np.mean(test.labels)), 1 - float(np.mean(test.labels)))
        accuracy = float(np.mean(predictions == test.labels))
        assert accuracy >= majority - 0.1

    def test_max_depth_limits_tree(self):
        dataset = make_random_dataset(n_rows=300, seed=2)
        shallow = DecisionTreeClassifier(max_depth=1).fit(dataset)
        assert shallow.n_leaves <= 2

    def test_min_samples_leaf_respected(self):
        dataset = make_random_dataset(n_rows=300, seed=3)
        constrained = DecisionTreeClassifier(min_samples_leaf=50).fit(dataset)
        full = DecisionTreeClassifier().fit(dataset)
        assert constrained.n_leaves <= full.n_leaves

    def test_single_class_data_yields_single_leaf(self):
        dataset = make_random_dataset(n_rows=50, seed=4)
        uniform = dataset.take(np.flatnonzero(dataset.labels == 1))
        tree = DecisionTreeClassifier().fit(uniform)
        assert tree.n_leaves == 1
        assert tree.predict(np.asarray([0, 0, 0])) == 1

    def test_feature_subsampling_still_learns(self, income_split):
        train, test = income_split
        tree = DecisionTreeClassifier(max_features="sqrt", seed=7).fit(train)
        assert set(np.unique(tree.predict_batch(test))).issubset({0, 1})


class TestPredictionPaths:
    def test_batch_matches_single(self):
        dataset = make_random_dataset(n_rows=150, seed=5)
        tree = DecisionTreeClassifier().fit(dataset)
        batch = tree.predict_batch(dataset)
        matrix = dataset.feature_matrix()
        for row in range(0, dataset.n_rows, 13):
            assert batch[row] == tree.predict(matrix[row])

    def test_fit_arrays_equivalent_to_fit(self):
        dataset = make_random_dataset(n_rows=150, seed=6)
        by_dataset = DecisionTreeClassifier().fit(dataset)
        by_arrays = DecisionTreeClassifier().fit_arrays(
            dataset.feature_matrix(), dataset.labels
        )
        assert np.array_equal(
            by_dataset.predict_batch(dataset),
            by_arrays.predict_matrix_batch(dataset.feature_matrix()),
        )
