"""Tests for the classic Extremely Randomised Trees baseline."""

import numpy as np
import pytest

from repro.baselines.ert import ExtraTreesClassifier
from repro.core.exceptions import NotFittedError

from tests.conftest import make_random_dataset


class TestValidation:
    def test_rejects_zero_estimators(self):
        with pytest.raises(ValueError):
            ExtraTreesClassifier(n_estimators=0)

    def test_rejects_zero_leaf_size(self):
        with pytest.raises(ValueError):
            ExtraTreesClassifier(min_samples_leaf=0)

    def test_predict_requires_fit(self):
        with pytest.raises(NotFittedError):
            ExtraTreesClassifier().predict(np.asarray([0]))


class TestLearning:
    def test_beats_majority(self, income_split):
        train, test = income_split
        ert = ExtraTreesClassifier(n_estimators=10, min_samples_leaf=2, seed=1).fit(train)
        predictions = ert.predict_batch(test)
        majority = max(float(np.mean(test.labels)), 1 - float(np.mean(test.labels)))
        assert float(np.mean(predictions == test.labels)) >= majority - 0.05

    def test_deterministic_per_seed(self, income_split):
        train, test = income_split
        first = ExtraTreesClassifier(n_estimators=4, seed=9).fit(train)
        second = ExtraTreesClassifier(n_estimators=4, seed=9).fit(train)
        assert np.array_equal(first.predict_batch(test), second.predict_batch(test))

    def test_constant_features_yield_leaf_ensemble(self):
        dataset = make_random_dataset(n_rows=60, seed=1)
        constant = dataset.take(np.flatnonzero(dataset.column(0) == dataset.column(0)[0]))
        # Restrict to rows where every feature happens to be constant is
        # fiddly; instead check single-class data collapses to leaves.
        uniform = dataset.take(np.flatnonzero(dataset.labels == 0))
        ert = ExtraTreesClassifier(n_estimators=2, seed=2).fit(uniform)
        assert ert.predict(np.asarray([0, 0, 0])) == 0
        assert constant.n_rows >= 1

    def test_single_prediction_matches_batch(self, income_split):
        train, test = income_split
        ert = ExtraTreesClassifier(n_estimators=5, seed=3).fit(train)
        batch = ert.predict_batch(test)
        matrix = test.feature_matrix()
        for row in range(0, test.n_rows, 31):
            assert batch[row] == ert.predict(matrix[row])

    def test_larger_leaf_size_builds_smaller_trees(self):
        dataset = make_random_dataset(n_rows=300, seed=3)

        def count_leaves(node):
            if hasattr(node, "predict"):
                return 1
            return count_leaves(node.left) + count_leaves(node.right)

        small_leaves = ExtraTreesClassifier(n_estimators=1, min_samples_leaf=2, seed=4)
        large_leaves = ExtraTreesClassifier(n_estimators=1, min_samples_leaf=64, seed=4)
        small_leaves.fit(dataset)
        large_leaves.fit(dataset)
        assert count_leaves(large_leaves._trees[0]) <= count_leaves(small_leaves._trees[0])
