"""Tests for the Random Forest baseline."""

import numpy as np
import pytest

from repro.baselines.forest import RandomForestClassifier
from repro.core.exceptions import NotFittedError


class TestValidation:
    def test_rejects_zero_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_predict_requires_fit(self):
        with pytest.raises(NotFittedError):
            RandomForestClassifier().predict(np.asarray([0]))


class TestLearning:
    def test_beats_majority(self, income_split):
        train, test = income_split
        forest = RandomForestClassifier(n_estimators=10, seed=1).fit(train)
        predictions = forest.predict_batch(test)
        majority = max(float(np.mean(test.labels)), 1 - float(np.mean(test.labels)))
        assert float(np.mean(predictions == test.labels)) >= majority - 0.05

    def test_deterministic_per_seed(self, income_split):
        train, test = income_split
        first = RandomForestClassifier(n_estimators=5, seed=3).fit(train)
        second = RandomForestClassifier(n_estimators=5, seed=3).fit(train)
        assert np.array_equal(first.predict_batch(test), second.predict_batch(test))

    def test_bootstrap_varies_trees(self, income_split):
        train, _ = income_split
        forest = RandomForestClassifier(n_estimators=3, seed=5).fit(train)
        # With bootstrap + feature subsampling the three trees are almost
        # surely structurally different: they disagree somewhere on train.
        matrix = train.feature_matrix()
        per_tree = np.stack(
            [tree.predict_matrix_batch(matrix) for tree in forest._trees]
        )
        assert (per_tree.min(axis=0) != per_tree.max(axis=0)).any()

    def test_single_prediction_matches_batch(self, income_split):
        train, test = income_split
        forest = RandomForestClassifier(n_estimators=5, seed=2).fit(train)
        batch = forest.predict_batch(test)
        matrix = test.feature_matrix()
        for row in range(0, test.n_rows, 29):
            assert batch[row] == forest.predict(matrix[row])
