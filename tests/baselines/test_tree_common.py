"""Tests for the shared baseline tree machinery."""

import numpy as np
import pytest

from repro.baselines.tree_common import (
    BaselineLeaf,
    BaselineSplit,
    best_threshold_for_feature,
    gini_children,
    majority_leaf,
    predict_matrix,
    predict_values,
)


class TestGiniChildren:
    def test_pure_split_has_zero_impurity(self):
        impurity = gini_children(
            np.asarray([5]), np.asarray([5]), n=10, n_plus=5
        )
        assert impurity[0] == pytest.approx(0.0)

    def test_degenerate_split_is_infinite(self):
        impurity = gini_children(np.asarray([0, 10]), np.asarray([0, 5]), 10, 5)
        assert np.isinf(impurity).all()

    def test_uninformative_split_keeps_parent_impurity(self):
        impurity = gini_children(np.asarray([5]), np.asarray([2]), n=10, n_plus=4)
        parent = 2 * 0.4 * 0.6
        assert impurity[0] == pytest.approx(parent, abs=0.05)


class TestBestThreshold:
    def test_finds_separating_threshold(self):
        codes = np.asarray([0, 1, 2, 3, 4, 5])
        labels = np.asarray([0, 0, 0, 1, 1, 1])
        result = best_threshold_for_feature(codes, labels, n_values=6)
        assert result is not None
        threshold, impurity = result
        assert threshold == 2
        assert impurity == pytest.approx(0.0)

    def test_constant_feature_returns_none(self):
        codes = np.full(5, 3)
        labels = np.asarray([0, 1, 0, 1, 0])
        assert best_threshold_for_feature(codes, labels, n_values=6) is None

    def test_single_value_domain_returns_none(self):
        assert (
            best_threshold_for_feature(np.zeros(4, dtype=int), np.zeros(4, dtype=int), 1)
            is None
        )


class TestPrediction:
    def make_tree(self):
        return BaselineSplit(
            feature=0,
            threshold=2,
            left=BaselineLeaf(n=5, n_plus=5),
            right=BaselineLeaf(n=5, n_plus=0),
        )

    def test_predict_values(self):
        tree = self.make_tree()
        assert predict_values(tree, np.asarray([1])) == 1
        assert predict_values(tree, np.asarray([3])) == 0

    def test_predict_matrix_matches_scalar(self):
        tree = self.make_tree()
        matrix = np.asarray([[0], [2], [3], [9]])
        batch = predict_matrix(tree, matrix)
        assert batch.tolist() == [
            predict_values(tree, row) for row in matrix
        ]

    def test_majority_leaf(self):
        leaf = majority_leaf(np.asarray([1, 1, 0]))
        assert leaf.n == 3
        assert leaf.n_plus == 2
        assert leaf.predict() == 1

    def test_leaf_tie_predicts_negative(self):
        assert BaselineLeaf(n=4, n_plus=2).predict() == 0
