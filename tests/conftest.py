"""Shared fixtures for the test suite.

Model training is the expensive part of these tests, so fitted models are
provided via session-scoped fixtures plus ``copy.deepcopy`` for tests that
mutate them (unlearning); datasets are generated once per session.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core.ensemble import HedgeCutClassifier
from repro.dataprep.dataset import Dataset, FeatureKind, FeatureSchema
from repro.datasets.registry import load_dataset
from repro.evaluation.splits import train_test_split


def small_schema() -> tuple[FeatureSchema, ...]:
    """A compact mixed schema used by hand-built datasets in tests."""
    return (
        FeatureSchema("num_a", FeatureKind.NUMERIC, 8),
        FeatureSchema("num_b", FeatureKind.NUMERIC, 5),
        FeatureSchema("cat_a", FeatureKind.CATEGORICAL, 4),
    )


def make_random_dataset(n_rows: int = 200, seed: int = 0) -> Dataset:
    """A hand-built random dataset with a weak planted signal."""
    rng = np.random.default_rng(seed)
    schema = small_schema()
    num_a = rng.integers(0, 8, size=n_rows)
    num_b = rng.integers(0, 5, size=n_rows)
    cat_a = rng.integers(0, 4, size=n_rows)
    score = (num_a >= 4).astype(int) + (cat_a == 2).astype(int)
    noise = rng.random(n_rows) < 0.2
    labels = ((score >= 1) ^ noise).astype(np.uint8)
    return Dataset(schema, [num_a, num_b, cat_a], labels)


@pytest.fixture(scope="session")
def random_dataset() -> Dataset:
    return make_random_dataset(n_rows=300, seed=11)


@pytest.fixture(scope="session")
def income_small() -> Dataset:
    """A small sample of the synthetic income dataset."""
    return load_dataset("income", n_rows=600, seed=3)


@pytest.fixture(scope="session")
def income_split(income_small: Dataset) -> tuple[Dataset, Dataset]:
    return train_test_split(income_small, test_fraction=0.2, seed=3)


@pytest.fixture(scope="session")
def fitted_model_session(income_split) -> HedgeCutClassifier:
    """A trained model for read-only tests. Never mutate this directly."""
    train, _ = income_split
    model = HedgeCutClassifier(n_trees=5, epsilon=0.01, seed=5)
    return model.fit(train)


@pytest.fixture()
def fitted_model(fitted_model_session) -> HedgeCutClassifier:
    """A private deep copy of the session model, safe to mutate."""
    return copy.deepcopy(fitted_model_session)
