"""Tests for the beam-search robustness extension."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ensemble import HedgeCutClassifier
from repro.core.robustness import (
    enumerate_is_robust,
    is_robust,
    is_robust_beam,
)
from repro.core.splits import SplitStats

from tests.conftest import make_random_dataset
from tests.core.test_robustness import split_pair


class TestBeamSearch:
    def test_catches_the_measured_greedy_miss(self):
        """The trusted-regime counterexample from our §4.2 replication."""
        best = SplitStats(n=47, n_plus=34, n_left=34, n_left_plus=32)
        candidate = SplitStats(n=47, n_plus=34, n_left=36, n_left_plus=32)
        assert is_robust(best, candidate, 2).robust  # greedy misses it
        assert not is_robust_beam(best, candidate, 2).robust
        assert not enumerate_is_robust(best, candidate, 2)

    def test_width_one_matches_greedy_semantics(self):
        best = SplitStats(n=100, n_plus=50, n_left=50, n_left_plus=50)
        candidate = SplitStats(n=100, n_plus=50, n_left=50, n_left_plus=25)
        assert is_robust_beam(best, candidate, 3, beam_width=1).robust

    def test_rejects_bad_arguments(self):
        stats = SplitStats(10, 5, 5, 4)
        with pytest.raises(ValueError):
            is_robust_beam(stats, stats, -1)
        with pytest.raises(ValueError):
            is_robust_beam(stats, stats, 1, beam_width=0)

    def test_zero_budget_robust(self):
        stats = SplitStats(10, 5, 5, 4)
        assert is_robust_beam(stats, stats, 0).robust

    @given(split_pair(max_n=25), st.integers(1, 3))
    @settings(max_examples=100, deadline=None)
    def test_non_robust_verdicts_are_sound(self, pair, budget):
        """A beam reversal is a constructive counterexample."""
        best, candidate = pair
        if not is_robust_beam(best, candidate, budget).robust:
            assert not enumerate_is_robust(best, candidate, budget)

    @given(split_pair(max_n=25), st.integers(1, 3))
    @settings(max_examples=100, deadline=None)
    def test_beam_dominates_greedy(self, pair, budget):
        """The beam can only find *more* reversals than one-step greedy."""
        best, candidate = pair
        greedy_non_robust = not is_robust(best, candidate, budget).robust
        if greedy_non_robust:
            assert not is_robust_beam(best, candidate, budget).robust

    @given(split_pair(max_n=18), st.integers(1, 2))
    @settings(max_examples=80, deadline=None)
    def test_wide_beam_approaches_the_oracle(self, pair, budget):
        """With a generous width on tiny instances, beam equals enumeration."""
        best, candidate = pair
        beam = is_robust_beam(best, candidate, budget, beam_width=64).robust
        oracle = enumerate_is_robust(best, candidate, budget)
        assert beam == oracle


class TestBeamMode:
    def test_beam_mode_trains_and_unlearns(self):
        dataset = make_random_dataset(n_rows=250, seed=81)
        model = HedgeCutClassifier(
            n_trees=3, epsilon=0.02, seed=81, robustness_mode="beam"
        )
        model.fit(dataset)
        assert model.predict(dataset.record(0).values) in (0, 1)
        report = model.unlearn(dataset.record(0))
        assert report.leaves_updated >= 3

    def test_beam_mode_finds_at_least_the_greedy_threats(self):
        dataset = make_random_dataset(n_rows=300, seed=82)
        greedy = HedgeCutClassifier(
            n_trees=4, epsilon=0.03, seed=82, robustness_mode="greedy"
        ).fit(dataset)
        beam = HedgeCutClassifier(
            n_trees=4, epsilon=0.03, seed=82, robustness_mode="beam"
        ).fit(dataset)
        # The beam rejects a superset of splits, so it cannot certify more
        # robust splits in expectation; structure counts reflect that on
        # aggregate (not per-tree, as re-draws change the randomness).
        assert beam.node_census().n_nodes > 0
        assert greedy.node_census().n_nodes > 0
