"""Tests for the compiled flat-array predictor."""

import numpy as np
import pytest

from repro.core.compiled import LEAF_MARKER, CompiledTree
from repro.core.nodes import Leaf, MaintenanceNode, SplitNode, SubtreeVariant
from repro.core.params import HedgeCutParams
from repro.core.splits import CategoricalSplit, NumericSplit, SplitStats
from repro.core.tree import TreeBuilder

from tests.conftest import make_random_dataset


def graph_predict(node, values):
    """Reference prediction by graph traversal."""
    while not isinstance(node, Leaf):
        if isinstance(node, MaintenanceNode):
            node = node.active.child_for_value(values[node.active.split.feature])
        else:
            node = node.child_for_value(values[node.split.feature])
    return node.predict()


def trained_tree(seed=0, **overrides):
    dataset = make_random_dataset(n_rows=250, seed=seed)
    params = HedgeCutParams(n_trees=1, seed=0, **overrides)
    tree = TreeBuilder(dataset, params, np.random.default_rng(seed)).build()
    return dataset, tree


class TestCompilation:
    def test_single_leaf_tree(self):
        compiled = CompiledTree.from_tree(Leaf(n=4, n_plus=3))
        assert compiled.feature == [LEAF_MARKER]
        assert compiled.predict_value((0,)) == 1

    def test_numeric_split_tree(self):
        root = SplitNode(
            split=NumericSplit(feature=0, cut=3),
            stats=SplitStats(10, 5, 5, 5),
            left=Leaf(5, 5),
            right=Leaf(5, 0),
        )
        compiled = CompiledTree.from_tree(root)
        assert compiled.predict_value((2,)) == 1
        assert compiled.predict_value((3,)) == 0

    def test_categorical_split_tree(self):
        root = SplitNode(
            split=CategoricalSplit(feature=0, subset_mask=0b010, cardinality=3),
            stats=SplitStats(10, 5, 5, 5),
            left=Leaf(5, 5),
            right=Leaf(5, 0),
        )
        compiled = CompiledTree.from_tree(root)
        assert compiled.predict_value((1,)) == 1
        assert compiled.predict_value((0,)) == 0
        assert compiled.predict_value((2,)) == 0

    def test_maintenance_node_resolves_active_variant(self):
        strong = SubtreeVariant(
            split=NumericSplit(feature=0, cut=4),
            stats=SplitStats(10, 5, 5, 5),
            left=Leaf(5, 5),
            right=Leaf(5, 0),
            gain=0.5,
        )
        weak = SubtreeVariant(
            split=NumericSplit(feature=0, cut=2),
            stats=SplitStats(10, 5, 5, 2),
            left=Leaf(5, 0),
            right=Leaf(5, 5),
            gain=0.1,
        )
        node = MaintenanceNode(variants=[strong, weak], active_index=0)
        compiled = CompiledTree.from_tree(node)
        # Active variant "strong": 1 < 4 goes left, positive leaf.
        assert compiled.predict_value((1,)) == 1
        # Switch the active variant and recompile: "weak" routes 1 < 2 to
        # its negative left leaf.
        node.active_index = 1
        recompiled = CompiledTree.from_tree(node)
        assert recompiled.predict_value((1,)) == 0


class TestEquivalenceWithGraph:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_compiled_matches_graph_on_training_data(self, seed):
        dataset, tree = trained_tree(seed=seed, epsilon=0.02)
        compiled = CompiledTree.from_tree(tree.root)
        for row in range(dataset.n_rows):
            values = dataset.record(row).values
            assert compiled.predict_value(values) == graph_predict(tree.root, values)

    def test_compiled_matches_graph_on_unseen_data(self):
        dataset, tree = trained_tree(seed=4)
        other = make_random_dataset(n_rows=100, seed=99)
        compiled = CompiledTree.from_tree(tree.root)
        for row in range(other.n_rows):
            values = other.record(row).values
            assert compiled.predict_value(values) == graph_predict(tree.root, values)

    def test_batch_matches_single(self):
        dataset, tree = trained_tree(seed=5)
        compiled = CompiledTree.from_tree(tree.root)
        batch = compiled.predict_batch(dataset)
        for row in range(dataset.n_rows):
            assert batch[row] == compiled.predict_value(dataset.record(row).values)


class TestLiveLeafStatistics:
    def test_leaf_updates_visible_without_recompilation(self):
        leaf_left = Leaf(n=3, n_plus=2)
        root = SplitNode(
            split=NumericSplit(feature=0, cut=3),
            stats=SplitStats(6, 3, 3, 2),
            left=leaf_left,
            right=Leaf(3, 1),
        )
        compiled = CompiledTree.from_tree(root)
        assert compiled.predict_value((0,)) == 1
        # Unlearning decrements the live leaf object; the compiled arrays
        # reference it, so the majority can flip without recompiling.
        leaf_left.n = 2
        leaf_left.n_plus = 1
        assert compiled.predict_value((0,)) == 0

    def test_proba_reads_live_counts(self):
        leaf = Leaf(n=4, n_plus=1)
        compiled = CompiledTree.from_tree(leaf)
        assert compiled.predict_proba_value((0,)) == pytest.approx(0.25)
        leaf.n_plus = 3
        assert compiled.predict_proba_value((0,)) == pytest.approx(0.75)
