"""Deferred-maintenance equivalence: ``deferred + flush == eager``.

The deferred mode's whole contract is that laziness is unobservable: a
model that tags maintenance nodes and re-scores later must land on the
*bit-identical* state an eager twin reaches, with the same cumulative
variant-switch count, no matter how deletions, insertions, predictions
and flushes interleave. The hypothesis suite drives random interleavings
of those four operations against twin models on registry datasets; the
unit tests pin the individual mechanisms (pending accounting, budget
trips, flush-on-predict, the pickling guard, write-through insertion).
"""

import copy
import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.deferred import MaintenanceFlushReport, flush_deferred
from repro.core.ensemble import HedgeCutClassifier
from repro.datasets.registry import load_dataset

from tests.conftest import make_random_dataset


@pytest.fixture(scope="module")
def dataset():
    return make_random_dataset(n_rows=300, seed=11)


def _fit(dataset, maintenance="eager", **kwargs):
    params = dict(n_trees=4, epsilon=0.05, seed=5)
    params.update(kwargs)
    model = HedgeCutClassifier(maintenance=maintenance, **params).fit(dataset)
    assert model.node_census().n_maintenance_nodes > 0
    return model


def _probe(dataset):
    return dataset.take(np.arange(min(120, dataset.n_rows)))


class TestPendingAccounting:
    def test_deferred_delete_tags_without_rescoring(self, dataset):
        model = _fit(dataset, maintenance="deferred")
        model.flush_on_predict = False
        report = model.unlearn(dataset.record(0), allow_budget_overrun=True)
        assert report.maintenance_nodes_visited > 0
        assert model.pending_maintenance_nodes > 0
        assert model.pending_maintenance_visits >= model.pending_maintenance_nodes
        # Tagging skips the re-score entirely; switches surface at flush.
        assert report.variant_switches == 0

    def test_flush_drains_and_reports(self, dataset):
        model = _fit(dataset, maintenance="deferred")
        model.flush_on_predict = False
        for row in range(8):
            model.unlearn(dataset.record(row), allow_budget_overrun=True)
        pending_nodes = model.pending_maintenance_nodes
        report = model.flush_maintenance()
        assert isinstance(report, MaintenanceFlushReport)
        assert report.nodes_flushed == pending_nodes
        assert report.visits_replayed > 0
        assert model.pending_maintenance_nodes == 0
        assert model.pending_maintenance_visits == 0
        # A second flush is a no-op.
        assert model.flush_maintenance().visits_replayed == 0

    def test_flush_is_noop_on_unfitted_model(self):
        model = HedgeCutClassifier(n_trees=2, maintenance="deferred")
        assert model.flush_maintenance().nodes_flushed == 0

    def test_predict_flushes_pending_by_default(self, dataset):
        model = _fit(dataset, maintenance="deferred")
        model.unlearn(dataset.record(0), allow_budget_overrun=True)
        assert model.pending_maintenance_visits > 0
        model.predict(dataset.record(5))
        assert model.pending_maintenance_visits == 0

    def test_eager_call_flushes_older_deferred_work(self, dataset):
        model = _fit(dataset, maintenance="deferred")
        model.flush_on_predict = False
        model.unlearn(dataset.record(0), allow_budget_overrun=True)
        assert model.pending_maintenance_visits > 0
        model.unlearn(
            dataset.record(1), allow_budget_overrun=True, maintenance="eager"
        )
        assert model.pending_maintenance_visits == 0

    def test_deferred_object_path_rejected(self, dataset):
        model = _fit(dataset)
        with pytest.raises(ValueError, match="packed write path"):
            model.unlearn(dataset.record(0), path="object", maintenance="deferred")

    def test_bad_maintenance_mode_rejected(self, dataset):
        with pytest.raises(ValueError, match="maintenance"):
            HedgeCutClassifier(n_trees=2, maintenance="lazy")
        model = _fit(dataset)
        with pytest.raises(ValueError, match="maintenance"):
            model.unlearn(dataset.record(0), maintenance="lazy")

    def test_pickle_guard_blocks_pending_state(self, dataset):
        model = _fit(dataset, maintenance="deferred")
        model.flush_on_predict = False
        model.unlearn(dataset.record(0), allow_budget_overrun=True)
        with pytest.raises(RuntimeError, match="flush_maintenance"):
            pickle.dumps(model.packed)
        model.flush_maintenance()
        pickle.dumps(model.packed)  # fine once drained


class TestEquivalenceFixedSchedules:
    """Deterministic mixed schedules; the hypothesis class randomises."""

    def _run_schedule(self, dataset, maintenance, budget=None):
        model = _fit(
            dataset, maintenance=maintenance, maintenance_budget=budget
        )
        model.flush_on_predict = False
        switches = 0
        insert_rows = range(200, 240)
        inserts = iter([dataset.record(row) for row in insert_rows])
        for step, row in enumerate(range(60)):
            if step % 3 == 2:
                switches += model.learn_one(next(inserts)).variant_switches
            elif step % 7 == 5:
                records = [dataset.record(row), dataset.record(row + 100)]
                switches += model.unlearn_batch(
                    records, allow_budget_overrun=True
                ).variant_switches
            else:
                switches += model.unlearn(
                    dataset.record(row), allow_budget_overrun=True
                ).variant_switches
        switches += model.flush_maintenance().variant_switches
        return model, switches

    @pytest.mark.parametrize("budget", [None, 8, 1])
    def test_deferred_plus_flush_equals_eager(self, dataset, budget):
        eager, eager_switches = self._run_schedule(dataset, "eager")
        deferred, deferred_switches = self._run_schedule(
            dataset, "deferred", budget=budget
        )
        probe = _probe(dataset)
        np.testing.assert_array_equal(
            deferred.predict_proba_batch(probe), eager.predict_proba_batch(probe)
        )
        assert deferred_switches == eager_switches

    def test_budget_trips_bound_pending_visits(self, dataset):
        model = _fit(dataset, maintenance="deferred", maintenance_budget=2)
        model.flush_on_predict = False
        for row in range(30):
            model.unlearn(dataset.record(row), allow_budget_overrun=True)
            # A node that reaches the budget is flushed immediately, so no
            # node ever holds more than budget pending visits afterwards.
            pack = model.packed.unlearn_pack()
            if len(pack.pending_mnode):
                counts = np.bincount(pack.pending_mnode)
                assert counts.max() <= 2

    def test_partial_flush_keeps_remaining_consistent(self, dataset):
        eager, eager_switches = self._run_schedule(dataset, "eager")
        model = _fit(dataset, maintenance="deferred")
        model.flush_on_predict = False
        total = 0
        inserts = iter([dataset.record(row) for row in range(200, 240)])
        for step, row in enumerate(range(60)):
            if step % 3 == 2:
                total += model.learn_one(next(inserts)).variant_switches
            elif step % 7 == 5:
                records = [dataset.record(row), dataset.record(row + 100)]
                total += model.unlearn_batch(
                    records, allow_budget_overrun=True
                ).variant_switches
            else:
                total += model.unlearn(
                    dataset.record(row), allow_budget_overrun=True
                ).variant_switches
            if step == 30:
                # Flush half the tagged nodes mid-stream via the kernel.
                pack = model.packed.unlearn_pack()
                tagged = np.unique(pack.pending_mnode)
                report = flush_deferred(pack, node_ids=tagged[: len(tagged) // 2])
                total += report.variant_switches
                for index in report.switched_trees:
                    model._compiled[index] = None
                    model.packed.repack_tree(index)
        total += model.flush_maintenance().variant_switches
        probe = _probe(dataset)
        np.testing.assert_array_equal(
            model.predict_proba_batch(probe), eager.predict_proba_batch(probe)
        )
        assert total == eager_switches


class TestLearnOneWriteThrough:
    def test_insertion_is_o1_on_packed_model(self, dataset):
        """Regression: learn_one must not invalidate the unlearn pack."""
        model = _fit(dataset)
        pack_before = model.packed.unlearn_pack()
        assert not pack_before._stale
        model.learn_one(dataset.record(250))
        pack_after = model.packed._unlearn_pack
        assert pack_after is pack_before  # no rebuild scheduled
        assert not pack_after._stale  # and no mark-stale write-through

    def test_insertion_matches_object_walk(self, dataset):
        packed_model = _fit(dataset)
        object_model = copy.deepcopy(packed_model)
        object_model.invalidate_compiled()
        object_model._packed = None
        record = dataset.record(250)
        packed_report = packed_model.learn_one(record)
        object_report = object_model.learn_one(record)
        assert packed_report.leaves_updated == object_report.leaves_updated
        assert packed_report.variant_switches == object_report.variant_switches
        probe = _probe(dataset)
        np.testing.assert_array_equal(
            packed_model.predict_proba_batch(probe),
            object_model.predict_proba_batch(probe),
        )

    def test_insert_then_delete_roundtrip_restores_stats(self, dataset):
        model = _fit(dataset)
        baseline = model.predict_proba_batch(_probe(dataset))
        record = dataset.record(250)
        model.learn_one(record)
        model.unlearn(record, allow_budget_overrun=True)
        np.testing.assert_array_equal(
            model.predict_proba_batch(_probe(dataset)), baseline
        )


_BASE_MODELS: dict[str, tuple] = {}


def _twin_models(name):
    """Fitted eager/deferred twins on a registry dataset (cached fit)."""
    if name not in _BASE_MODELS:
        data = load_dataset(name, n_rows=400, seed=3)
        model = HedgeCutClassifier(n_trees=3, epsilon=0.05, seed=7).fit(data)
        assert model.node_census().n_maintenance_nodes > 0
        _BASE_MODELS[name] = (data, model)
    data, base = _BASE_MODELS[name]
    eager = copy.deepcopy(base)
    deferred = copy.deepcopy(base)
    deferred.maintenance = "deferred"
    deferred.flush_on_predict = False
    return data, eager, deferred


class TestEquivalenceProperty:
    """Random interleavings of delete / insert / predict / flush."""

    @given(
        name=st.sampled_from(["income", "heart"]),
        ops=st.lists(
            st.tuples(st.sampled_from("ddipf"), st.integers(0, 10_000)),
            min_size=5,
            max_size=40,
        ),
        budget=st.sampled_from([None, 4, 1]),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_interleaving_is_equivalent(self, name, ops, budget):
        data, eager, deferred = _twin_models(name)
        deferred.maintenance_budget = budget
        delete_rows = list(range(200))
        insert_rows = list(range(200, 400))
        eager_switches = deferred_switches = 0
        for kind, pick in ops:
            if kind == "d":
                if not delete_rows:
                    continue
                record = data.record(delete_rows.pop(pick % len(delete_rows)))
                eager_switches += eager.unlearn(
                    record, allow_budget_overrun=True
                ).variant_switches
                deferred_switches += deferred.unlearn(
                    record, allow_budget_overrun=True
                ).variant_switches
            elif kind == "i":
                if not insert_rows:
                    continue
                record = data.record(insert_rows.pop(pick % len(insert_rows)))
                eager_switches += eager.learn_one(record).variant_switches
                deferred_switches += deferred.learn_one(record).variant_switches
            elif kind == "p":
                row = data.feature_matrix()[pick % data.n_rows][None, :]
                # flush_on_predict is off, so the test owns the flush
                # (and must keep counting the switches it surfaces).
                deferred_switches += deferred.flush_maintenance().variant_switches
                np.testing.assert_array_equal(
                    deferred.predict_rows(row), eager.predict_rows(row)
                )
            else:
                deferred_switches += deferred.flush_maintenance().variant_switches
        deferred_switches += deferred.flush_maintenance().variant_switches
        probe = _probe(data)
        np.testing.assert_array_equal(
            deferred.predict_proba_batch(probe), eager.predict_proba_batch(probe)
        )
        assert deferred_switches == eager_switches
