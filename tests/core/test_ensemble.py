"""Tests for the public HedgeCutClassifier API."""

import numpy as np
import pytest

from repro.core.ensemble import HedgeCutClassifier
from repro.core.exceptions import (
    DeletionBudgetExhausted,
    NotFittedError,
    UnlearningError,
)
from repro.dataprep.dataset import Record

from tests.conftest import make_random_dataset


class TestFit:
    def test_fit_returns_self(self, income_split):
        train, _ = income_split
        model = HedgeCutClassifier(n_trees=2, seed=0)
        assert model.fit(train) is model
        assert model.is_fitted

    def test_fit_builds_requested_tree_count(self, fitted_model_session):
        assert len(fitted_model_session.trees) == 5

    def test_fit_is_deterministic_per_seed(self, income_split):
        train, test = income_split
        first = HedgeCutClassifier(n_trees=3, seed=123).fit(train)
        second = HedgeCutClassifier(n_trees=3, seed=123).fit(train)
        assert np.array_equal(first.predict_batch(test), second.predict_batch(test))

    def test_different_seeds_differ(self, income_split):
        train, test = income_split
        first = HedgeCutClassifier(n_trees=3, seed=1).fit(train)
        second = HedgeCutClassifier(n_trees=3, seed=2).fit(train)
        # Almost surely at least one prediction differs on 120 test rows.
        assert not np.array_equal(
            first.predict_batch(test), second.predict_batch(test)
        ) or not np.array_equal(
            first.predict_batch(train), second.predict_batch(train)
        )

    def test_empty_dataset_rejected(self, income_small):
        model = HedgeCutClassifier(n_trees=1)
        with pytest.raises(ValueError):
            model.fit(income_small.take(np.asarray([], dtype=np.int64)))


class TestNotFitted:
    def test_predict_requires_fit(self):
        with pytest.raises(NotFittedError):
            HedgeCutClassifier().predict((0, 0, 0))

    def test_unlearn_requires_fit(self):
        with pytest.raises(NotFittedError):
            HedgeCutClassifier().unlearn(Record(values=(0,), label=0))

    def test_budget_requires_fit(self):
        with pytest.raises(NotFittedError):
            _ = HedgeCutClassifier().deletion_budget


class TestPrediction:
    def test_predict_accepts_record_and_tuple(self, fitted_model_session, income_split):
        train, _ = income_split
        record = train.record(0)
        by_record = fitted_model_session.predict(record)
        by_tuple = fitted_model_session.predict(record.values)
        assert by_record == by_tuple

    def test_predict_batch_matches_single(self, fitted_model_session, income_split):
        _, test = income_split
        batch = fitted_model_session.predict_batch(test)
        singles = [
            fitted_model_session.predict(test.record(row).values)
            for row in range(min(40, test.n_rows))
        ]
        assert batch[: len(singles)].tolist() == singles

    def test_predict_proba_in_unit_interval(self, fitted_model_session, income_split):
        _, test = income_split
        for row in range(0, test.n_rows, 17):
            proba = fitted_model_session.predict_proba(test.record(row).values)
            assert 0.0 <= proba <= 1.0

    def test_model_beats_majority_class(self, fitted_model_session, income_split):
        _, test = income_split
        predictions = fitted_model_session.predict_batch(test)
        accuracy = float(np.mean(predictions == test.labels))
        majority = max(
            float(np.mean(test.labels)), 1.0 - float(np.mean(test.labels))
        )
        assert accuracy >= majority - 0.05


class TestUnlearning:
    def test_unlearn_consumes_budget(self, fitted_model, income_split):
        train, _ = income_split
        budget = fitted_model.deletion_budget
        assert budget >= 1
        fitted_model.unlearn(train.record(0))
        assert fitted_model.n_unlearned == 1
        assert fitted_model.remaining_deletion_budget == budget - 1

    def test_budget_exhaustion_raises(self, fitted_model, income_split):
        train, _ = income_split
        for row in range(fitted_model.deletion_budget):
            fitted_model.unlearn(train.record(row))
        with pytest.raises(DeletionBudgetExhausted):
            fitted_model.unlearn(train.record(fitted_model.deletion_budget))

    def test_budget_overrun_opt_in(self, fitted_model, income_split):
        train, _ = income_split
        for row in range(fitted_model.deletion_budget):
            fitted_model.unlearn(train.record(row))
        report = fitted_model.unlearn(
            train.record(fitted_model.deletion_budget), allow_budget_overrun=True
        )
        assert report.leaves_updated >= 1

    def test_unlearn_requires_record_type(self, fitted_model):
        with pytest.raises(TypeError):
            fitted_model.unlearn((0, 0, 0))

    def test_unlearn_rejects_wrong_arity(self, fitted_model):
        with pytest.raises(UnlearningError):
            fitted_model.unlearn(Record(values=(0,), label=0))

    def test_unlearn_batch_aggregates(self, fitted_model, income_split):
        train, _ = income_split
        budget = fitted_model.deletion_budget
        records = [train.record(row) for row in range(min(2, budget))]
        report = fitted_model.unlearn_batch(records)
        assert report.leaves_updated >= len(records) * len(fitted_model.trees)

    def test_unlearning_keeps_predictions_valid(self, fitted_model, income_split):
        train, test = income_split
        fitted_model.unlearn(train.record(5))
        predictions = fitted_model.predict_batch(test)
        assert set(np.unique(predictions)).issubset({0, 1})


class TestOnlineLearning:
    def test_learn_one_increments_leaves(self, fitted_model, income_split):
        train, _ = income_split
        record = train.record(0)
        fitted_model.learn_one(record)
        # Learning the record back must allow unlearning it twice in a row.
        fitted_model.unlearn(record)
        fitted_model.unlearn(record, allow_budget_overrun=True)

    def test_learn_then_unlearn_roundtrip_preserves_predictions(
        self, fitted_model, fitted_model_session, income_split
    ):
        train, test = income_split
        record = train.record(3)
        fitted_model.learn_one(record)
        fitted_model.unlearn(record)
        before = fitted_model_session.predict_batch(test)
        after = fitted_model.predict_batch(test)
        assert np.array_equal(before, after)


class TestCensusAndPersistence:
    def test_node_census_aggregates_trees(self, fitted_model_session):
        structure = fitted_model_session.node_census()
        assert len(structure.per_tree) == 5
        assert structure.n_nodes > 0
        assert 0.0 <= structure.non_robust_fraction < 1.0
        assert structure.n_leaves > 0

    def test_save_load_roundtrip(self, tmp_path, fitted_model, income_split):
        _, test = income_split
        path = tmp_path / "model.bin"
        fitted_model.save(path)
        restored = HedgeCutClassifier.load(path)
        assert np.array_equal(
            fitted_model.predict_batch(test), restored.predict_batch(test)
        )
        assert restored.deletion_budget == fitted_model.deletion_budget

    def test_save_requires_fit(self, tmp_path):
        with pytest.raises(NotFittedError):
            HedgeCutClassifier().save(tmp_path / "nope.bin")

    def test_load_preserves_unlearning_state(self, tmp_path, fitted_model, income_split):
        train, _ = income_split
        fitted_model.unlearn(train.record(0))
        path = tmp_path / "model.bin"
        fitted_model.save(path)
        restored = HedgeCutClassifier.load(path)
        assert restored.n_unlearned == 1


class TestRobustnessModesIntegration:
    @pytest.mark.parametrize("mode", ["greedy", "off"])
    def test_modes_train_and_predict(self, mode):
        dataset = make_random_dataset(n_rows=200, seed=21)
        model = HedgeCutClassifier(n_trees=2, seed=0, robustness_mode=mode)
        model.fit(dataset)
        assert model.predict(dataset.record(0).values) in (0, 1)
