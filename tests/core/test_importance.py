"""Tests for Gini feature importance."""

import numpy as np
import pytest

from repro.core.ensemble import HedgeCutClassifier
from repro.core.importance import feature_importance, top_features, tree_feature_importance
from repro.core.nodes import Leaf

from tests.conftest import make_random_dataset


class TestTreeImportance:
    def test_single_leaf_has_no_importance(self):
        scores = tree_feature_importance(Leaf(10, 4), n_features=3)
        assert scores.tolist() == [0.0, 0.0, 0.0]

    def test_scores_are_non_negative(self, fitted_model_session):
        for tree in fitted_model_session.trees:
            scores = tree_feature_importance(
                tree.root, len(fitted_model_session.schema)
            )
            assert (scores >= 0).all()


class TestEnsembleImportance:
    def test_normalised_scores_sum_to_one(self, fitted_model_session):
        scores = feature_importance(fitted_model_session)
        assert scores.shape == (len(fitted_model_session.schema),)
        assert scores.sum() == pytest.approx(1.0)

    def test_informative_features_dominate(self):
        """The planted signal features must outrank the pure-noise one.

        ``make_random_dataset`` labels depend on features 0 (num_a) and 2
        (cat_a); feature 1 (num_b) is noise.
        """
        dataset = make_random_dataset(n_rows=400, seed=71)
        model = HedgeCutClassifier(n_trees=10, seed=71).fit(dataset)
        scores = feature_importance(model)
        assert scores[0] > scores[1]
        assert scores[2] > scores[1]

    def test_top_features_names_and_order(self):
        dataset = make_random_dataset(n_rows=400, seed=72)
        model = HedgeCutClassifier(n_trees=5, seed=72).fit(dataset)
        ranked = top_features(model, k=3)
        assert len(ranked) == 3
        names = [name for name, _ in ranked]
        assert set(names).issubset({"num_a", "num_b", "cat_a"})
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_unnormalised_scores(self, fitted_model_session):
        raw = feature_importance(fitted_model_session, normalize=False)
        assert (raw >= 0).all()

    def test_importance_tracks_unlearning(self, fitted_model, income_split):
        """Importances are recomputed from live statistics."""
        train, _ = income_split
        before = feature_importance(fitted_model, normalize=False)
        for row in range(fitted_model.deletion_budget):
            fitted_model.unlearn(train.record(row))
        after = feature_importance(fitted_model, normalize=False)
        assert before.shape == after.shape
        # Statistics changed, so the raw scores cannot be bitwise frozen.
        assert not np.array_equal(before, after)
