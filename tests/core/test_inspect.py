"""Tests for model introspection utilities."""

import pytest

from repro.core.inspect import inspect_model, render_tree, summarize_tree
from repro.core.nodes import Leaf, MaintenanceNode, SplitNode, SubtreeVariant
from repro.core.splits import NumericSplit, SplitStats
from repro.dataprep.dataset import FeatureKind, FeatureSchema


def tiny_schema():
    return (FeatureSchema("age", FeatureKind.NUMERIC, 20),)


def tiny_tree():
    return SplitNode(
        split=NumericSplit(feature=0, cut=10),
        stats=SplitStats(10, 6, 4, 4),
        left=Leaf(4, 4),
        right=Leaf(6, 2),
    )


def tree_with_maintenance():
    variant_a = SubtreeVariant(
        split=NumericSplit(feature=0, cut=5),
        stats=SplitStats(10, 5, 5, 5),
        left=Leaf(5, 5),
        right=Leaf(5, 0),
        gain=0.5,
    )
    variant_b = SubtreeVariant(
        split=NumericSplit(feature=0, cut=15),
        stats=SplitStats(10, 5, 8, 4),
        left=Leaf(8, 4),
        right=Leaf(2, 1),
        gain=0.1,
    )
    return MaintenanceNode(variants=[variant_a, variant_b], active_index=0)


class TestSummaries:
    def test_summarize_plain_tree(self):
        summary = summarize_tree(tiny_tree())
        assert summary.n_leaves == 2
        assert summary.n_robust_splits == 1
        assert summary.n_maintenance_nodes == 0
        assert summary.max_depth == 1
        assert summary.total_records == 10
        assert summary.mean_leaf_size == pytest.approx(5.0)
        assert summary.n_nodes == 3

    def test_summarize_counts_variants(self):
        summary = summarize_tree(tree_with_maintenance())
        assert summary.n_maintenance_nodes == 1
        assert summary.n_variants == 2
        assert summary.n_leaves == 4
        # Active-path record total counts the active variant only.
        assert summary.total_records == 10

    def test_summarize_single_leaf(self):
        summary = summarize_tree(Leaf(7, 3))
        assert summary.n_nodes == 1
        assert summary.max_depth == 0
        assert summary.total_records == 7


class TestRender:
    def test_renders_splits_and_leaves(self):
        rendered = render_tree(tiny_tree(), tiny_schema())
        assert "age" in rendered
        assert "leaf(n=4, n+=4)" in rendered
        assert "gain=" in rendered

    def test_marks_active_variant(self):
        rendered = render_tree(tree_with_maintenance(), tiny_schema())
        assert "maintenance(2 variants, active=0)" in rendered
        assert "*variant" in rendered

    def test_depth_truncation(self):
        deep = SplitNode(
            split=NumericSplit(feature=0, cut=10),
            stats=SplitStats(4, 2, 2, 2),
            left=tiny_tree(),
            right=Leaf(2, 0),
        )
        rendered = render_tree(deep, tiny_schema(), max_depth=0)
        assert "..." in rendered


class TestModelReport:
    def test_inspect_fitted_model(self, fitted_model_session):
        report = inspect_model(fitted_model_session)
        assert report.n_trees == 5
        assert report.total_nodes > 0
        assert 0.0 <= report.non_robust_fraction < 1.0
        assert report.mean_depth > 0
        summary = report.format_summary()
        assert "HedgeCut model" in summary
        assert "deletion budget" in summary

    def test_report_reflects_unlearning(self, fitted_model, income_split):
        train, _ = income_split
        fitted_model.unlearn(train.record(0))
        report = inspect_model(fitted_model)
        assert report.n_unlearned == 1
