"""Tests for the K-class statistics and robustness generalisation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.multiclass import (
    MulticlassSplitStats,
    enumerate_is_robust_multiclass,
    is_robust_multiclass,
    weaken_split_multiclass,
)
from repro.core.robustness import is_robust
from repro.core.splits import SplitStats


@st.composite
def multiclass_pair(draw, max_classes: int = 3, max_per_cell: int = 8):
    n_classes = draw(st.integers(2, max_classes))

    def stats():
        cells = st.integers(0, max_per_cell)
        left = [draw(cells) for _ in range(n_classes)]
        right = [draw(cells) for _ in range(n_classes)]
        return left, right

    left_a, right_a = stats()
    # Both splits describe the same records: per-class totals must match.
    totals = [l + r for l, r in zip(left_a, right_a)]
    left_b = [draw(st.integers(0, total)) for total in totals]
    right_b = [total - l for total, l in zip(totals, left_b)]
    first = MulticlassSplitStats(np.asarray(left_a), np.asarray(right_a))
    second = MulticlassSplitStats(np.asarray(left_b), np.asarray(right_b))
    if first.gini_gain() >= second.gini_gain():
        return first, second
    return second, first


class TestStats:
    def test_from_labels(self):
        labels = np.asarray([0, 1, 2, 1, 0])
        goes_left = np.asarray([True, True, False, False, False])
        stats = MulticlassSplitStats.from_labels(labels, goes_left, n_classes=3)
        assert stats.left.tolist() == [1, 1, 0]
        assert stats.right.tolist() == [1, 1, 1]
        assert stats.n == 5
        assert stats.class_total(1) == 2

    def test_rejects_inconsistent_shapes(self):
        with pytest.raises(ValueError):
            MulticlassSplitStats(np.asarray([1, 2]), np.asarray([1]))

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            MulticlassSplitStats(np.asarray([-1, 2]), np.asarray([1, 1]))

    def test_removal(self):
        stats = MulticlassSplitStats(np.asarray([2, 1]), np.asarray([0, 3]))
        stats.remove(0, left=True)
        assert stats.left.tolist() == [1, 1]
        assert not stats.can_remove(0, left=False)
        with pytest.raises(ValueError):
            stats.remove(0, left=False)


class TestGiniGain:
    def test_binary_case_matches_binary_implementation(self):
        """K=2 must reduce exactly to the binary SplitStats gain."""
        multi = MulticlassSplitStats(np.asarray([3, 5]), np.asarray([7, 1]))
        binary = SplitStats(n=16, n_plus=6, n_left=8, n_left_plus=5)
        # Class 1 is "positive": left has 5 positives, right has 1.
        assert multi.gini_gain() == pytest.approx(binary.gini_gain())

    def test_perfect_three_way_separation_without_split_info(self):
        # One class per side: gain = parent impurity - weighted child.
        stats = MulticlassSplitStats(np.asarray([4, 0]), np.asarray([0, 4]))
        assert stats.gini_gain() == pytest.approx(0.5)

    def test_empty_stats(self):
        stats = MulticlassSplitStats(np.zeros(3), np.zeros(3))
        assert stats.gini_gain() == 0.0

    @given(multiclass_pair())
    @settings(max_examples=80, deadline=None)
    def test_gain_bounds(self, pair):
        best, _ = pair
        gain = best.gini_gain()
        assert -1e-12 <= gain <= 1.0


class TestRobustness:
    def test_weaken_step_reduces_gap_most(self):
        best = MulticlassSplitStats(np.asarray([5, 0, 1]), np.asarray([0, 4, 3]))
        candidate = MulticlassSplitStats(np.asarray([3, 2, 1]), np.asarray([2, 2, 3]))
        step = weaken_split_multiclass(best, candidate)
        assert step is not None
        assert step.best_stats.n == best.n - 1

    def test_class_count_mismatch_rejected(self):
        best = MulticlassSplitStats(np.asarray([1, 1]), np.asarray([1, 1]))
        candidate = MulticlassSplitStats(np.asarray([1, 1, 1]), np.asarray([1, 1, 1]))
        with pytest.raises(ValueError):
            weaken_split_multiclass(best, candidate)

    def test_zero_budget_is_robust(self):
        stats = MulticlassSplitStats(np.asarray([2, 2]), np.asarray([2, 2]))
        assert is_robust_multiclass(stats, stats, 0)

    def test_negative_budget_rejected(self):
        stats = MulticlassSplitStats(np.asarray([2, 2]), np.asarray([2, 2]))
        with pytest.raises(ValueError):
            is_robust_multiclass(stats, stats, -1)
        with pytest.raises(ValueError):
            enumerate_is_robust_multiclass(stats, stats, -1)

    def test_tied_identical_stats_are_fragile(self):
        left = np.asarray([4, 1])
        right = np.asarray([1, 4])
        best = MulticlassSplitStats(left.copy(), right.copy())
        candidate = MulticlassSplitStats(left.copy(), right.copy())
        # Equal gains, asymmetric removals available: a reversal exists.
        assert not enumerate_is_robust_multiclass(best, candidate, 2)

    @given(multiclass_pair(max_classes=2, max_per_cell=5), st.integers(1, 2))
    @settings(max_examples=60, deadline=None)
    def test_binary_reduction_is_consistent_with_binary_greedy(self, pair, budget):
        """For K=2 both greedy tests are sound against the same oracle.

        The two greedy implementations may break equal-delta ties in a
        different order and therefore diverge on fragile pairs; what must
        hold is that any "non-robust" verdict (from either) is confirmed by
        exhaustive enumeration, which is identical for K=2.
        """
        from repro.core.robustness import enumerate_is_robust

        best, candidate = pair

        def to_binary(stats):
            return SplitStats(
                n=stats.n,
                n_plus=stats.class_total(1),
                n_left=stats.n_left,
                n_left_plus=int(stats.left[1]),
            )

        binary_best, binary_candidate = to_binary(best), to_binary(candidate)
        multi = is_robust_multiclass(best, candidate, budget)
        binary = is_robust(binary_best, binary_candidate, budget).robust
        oracle = enumerate_is_robust(binary_best, binary_candidate, budget)
        if not multi or not binary:
            assert not oracle

    @given(multiclass_pair(max_classes=3, max_per_cell=4), st.integers(1, 2))
    @settings(max_examples=40, deadline=None)
    def test_greedy_non_robust_is_sound(self, pair, budget):
        best, candidate = pair
        if not is_robust_multiclass(best, candidate, budget):
            assert not enumerate_is_robust_multiclass(best, candidate, budget)
