"""Tests for the K-class HedgeCut classifier."""

import numpy as np
import pytest

from repro.core.exceptions import (
    DeletionBudgetExhausted,
    NotFittedError,
    UnlearningError,
)
from repro.core.multiclass_model import (
    MCLeaf,
    MCMaintenanceNode,
    MCSplitNode,
    MulticlassDataset,
    MulticlassHedgeCut,
    MulticlassRecord,
)
from repro.dataprep.dataset import FeatureKind, FeatureSchema


def make_three_class_dataset(n_rows=400, seed=0) -> MulticlassDataset:
    """Three classes carved from two features plus label noise."""
    rng = np.random.default_rng(seed)
    schema = (
        FeatureSchema("a", FeatureKind.NUMERIC, 10),
        FeatureSchema("b", FeatureKind.NUMERIC, 10),
        FeatureSchema("c", FeatureKind.CATEGORICAL, 5),
    )
    a = rng.integers(0, 10, size=n_rows)
    b = rng.integers(0, 10, size=n_rows)
    c = rng.integers(0, 5, size=n_rows)
    labels = np.where(a < 4, 0, np.where(b < 5, 1, 2)).astype(np.int64)
    noise = rng.random(n_rows) < 0.1
    labels[noise] = rng.integers(0, 3, size=int(noise.sum()))
    return MulticlassDataset(
        schema=schema,
        columns=(a.astype(np.uint8), b.astype(np.uint8), c.astype(np.uint8)),
        labels=labels,
        n_classes=3,
    )


class TestDataset:
    def test_validates_label_range(self):
        schema = (FeatureSchema("a", FeatureKind.NUMERIC, 4),)
        with pytest.raises(ValueError):
            MulticlassDataset(
                schema=schema,
                columns=(np.asarray([0, 1]),),
                labels=np.asarray([0, 5]),
                n_classes=3,
            )

    def test_requires_two_classes(self):
        schema = (FeatureSchema("a", FeatureKind.NUMERIC, 4),)
        with pytest.raises(ValueError):
            MulticlassDataset(
                schema=schema,
                columns=(np.asarray([0]),),
                labels=np.asarray([0]),
                n_classes=1,
            )

    def test_record_and_drop(self):
        dataset = make_three_class_dataset(n_rows=50)
        record = dataset.record(3)
        assert len(record.values) == 3
        reduced = dataset.drop([0, 1])
        assert reduced.n_rows == 48


class TestLeaf:
    def test_argmax_prediction(self):
        leaf = MCLeaf(counts=np.asarray([1, 5, 2]))
        assert leaf.predict() == 1

    def test_remove_guards_underflow(self):
        leaf = MCLeaf(counts=np.asarray([0, 1]))
        leaf.remove(1)
        with pytest.raises(UnlearningError):
            leaf.remove(1)


class TestTraining:
    def test_learns_the_three_class_concept(self):
        dataset = make_three_class_dataset(seed=1)
        model = MulticlassHedgeCut(n_trees=10, epsilon=0.005, seed=1).fit(dataset)
        predictions = model.predict_batch(dataset)
        accuracy = float(np.mean(predictions == dataset.labels))
        majority = float(np.bincount(dataset.labels).max()) / dataset.n_rows
        assert accuracy > majority + 0.15

    def test_unfitted_rejects_predict(self):
        with pytest.raises(NotFittedError):
            MulticlassHedgeCut().predict((0, 0, 0))

    def test_deterministic_per_seed(self):
        dataset = make_three_class_dataset(seed=2)
        first = MulticlassHedgeCut(n_trees=4, seed=7).fit(dataset)
        second = MulticlassHedgeCut(n_trees=4, seed=7).fit(dataset)
        assert np.array_equal(first.predict_batch(dataset), second.predict_batch(dataset))

    def test_empty_dataset_rejected(self):
        dataset = make_three_class_dataset(n_rows=50)
        empty = MulticlassDataset(
            schema=dataset.schema,
            columns=tuple(column[:0] for column in dataset.columns),
            labels=dataset.labels[:0],
            n_classes=3,
        )
        with pytest.raises(ValueError):
            MulticlassHedgeCut(n_trees=1).fit(empty)


class TestUnlearning:
    def test_budget_accounting(self):
        dataset = make_three_class_dataset(seed=3)
        model = MulticlassHedgeCut(n_trees=3, epsilon=0.01, seed=3).fit(dataset)
        budget = model.deletion_budget
        for row in range(budget):
            model.unlearn(dataset.record(row))
        assert model.remaining_deletion_budget == 0
        with pytest.raises(DeletionBudgetExhausted):
            model.unlearn(dataset.record(budget))

    def test_label_out_of_range_rejected(self):
        dataset = make_three_class_dataset(seed=4)
        model = MulticlassHedgeCut(n_trees=2, seed=4).fit(dataset)
        with pytest.raises(UnlearningError):
            model.unlearn(MulticlassRecord(values=(0, 0, 0), label=9))

    def test_unlearning_equals_recount(self):
        """Every statistic matches a recount of the surviving records."""
        dataset = make_three_class_dataset(n_rows=300, seed=5)
        model = MulticlassHedgeCut(n_trees=3, epsilon=0.02, seed=5).fit(dataset)
        removed = list(range(model.deletion_budget))
        for row in removed:
            model.unlearn(dataset.record(row))
        surviving = [
            dataset.record(row)
            for row in range(dataset.n_rows)
            if row not in set(removed)
        ]

        def check(node, records):
            counts = np.zeros(3, dtype=np.int64)
            for record in records:
                counts[record.label] += 1
            if isinstance(node, MCLeaf):
                assert node.counts.tolist() == counts.tolist()
                return
            if isinstance(node, MCSplitNode):
                branches = [(node.split, node.stats, node.left, node.right)]
            else:
                branches = [
                    (v.split, v.stats, v.left, v.right) for v in node.variants
                ]
            for split, stats, left, right in branches:
                left_records = [
                    record
                    for record in records
                    if split.goes_left_value(record.values[split.feature])
                ]
                right_records = [
                    record
                    for record in records
                    if not split.goes_left_value(record.values[split.feature])
                ]
                left_counts = np.zeros(3, dtype=np.int64)
                for record in left_records:
                    left_counts[record.label] += 1
                assert stats.left.tolist() == left_counts.tolist()
                check(left, left_records)
                check(right, right_records)

        for root in model._roots:
            check(root, surviving)

    def test_maintenance_variants_exist_under_loose_epsilon(self):
        dataset = make_three_class_dataset(n_rows=300, seed=6)
        model = MulticlassHedgeCut(n_trees=5, epsilon=0.05, seed=6).fit(dataset)

        def count_maintenance(node):
            if isinstance(node, MCLeaf):
                return 0
            if isinstance(node, MCSplitNode):
                return count_maintenance(node.left) + count_maintenance(node.right)
            return 1 + sum(
                count_maintenance(v.left) + count_maintenance(v.right)
                for v in node.variants
            )

        total = sum(count_maintenance(root) for root in model._roots)
        assert total > 0
