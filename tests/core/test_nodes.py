"""Tests for leaf, split and maintenance node behaviour."""

import pytest

from repro.core.nodes import (
    Leaf,
    MaintenanceNode,
    SplitNode,
    SubtreeVariant,
    census,
    iter_nodes,
)
from repro.core.splits import NumericSplit, SplitStats


def make_variant(gain_left_plus: int, n: int = 20) -> SubtreeVariant:
    stats = SplitStats(n=n, n_plus=10, n_left=10, n_left_plus=gain_left_plus)
    variant = SubtreeVariant(
        split=NumericSplit(feature=0, cut=3),
        stats=stats,
        left=Leaf(n=10, n_plus=gain_left_plus),
        right=Leaf(n=10, n_plus=10 - gain_left_plus),
    )
    variant.refresh_gain()
    return variant


class TestLeaf:
    def test_majority_prediction(self):
        assert Leaf(n=10, n_plus=6).predict() == 1
        assert Leaf(n=10, n_plus=4).predict() == 0

    def test_tie_predicts_negative(self):
        assert Leaf(n=10, n_plus=5).predict() == 0

    def test_proba(self):
        assert Leaf(n=10, n_plus=4).predict_proba() == pytest.approx(0.4)

    def test_empty_leaf_is_uninformative(self):
        assert Leaf(n=0, n_plus=0).predict_proba() == pytest.approx(0.5)
        assert Leaf(n=0, n_plus=0).predict() == 0


class TestSplitNode:
    def test_routes_by_split(self):
        left = Leaf(n=5, n_plus=5)
        right = Leaf(n=5, n_plus=0)
        node = SplitNode(
            split=NumericSplit(feature=1, cut=4),
            stats=SplitStats(10, 5, 5, 5),
            left=left,
            right=right,
        )
        assert node.child_for_value(3) is left
        assert node.child_for_value(4) is right


class TestMaintenanceNode:
    def test_requires_variants(self):
        with pytest.raises(ValueError):
            MaintenanceNode(variants=[])

    def test_rejects_bad_active_index(self):
        with pytest.raises(ValueError):
            MaintenanceNode(variants=[make_variant(9)], active_index=3)

    def test_rescore_selects_highest_gain(self):
        weak = make_variant(6)
        strong = make_variant(10)
        node = MaintenanceNode(variants=[weak, strong], active_index=0)
        switched = node.rescore()
        assert switched
        assert node.active is strong

    def test_rescore_reports_no_switch_when_stable(self):
        strong = make_variant(10)
        weak = make_variant(6)
        node = MaintenanceNode(variants=[strong, weak], active_index=0)
        assert not node.rescore()
        assert node.active is strong

    def test_rescore_breaks_ties_towards_lower_index(self):
        first = make_variant(8)
        second = make_variant(8)
        node = MaintenanceNode(variants=[first, second], active_index=1)
        switched = node.rescore()
        assert switched
        assert node.active_index == 0

    def test_rescore_tracks_stat_mutation(self):
        strong = make_variant(10)
        weak = make_variant(6)
        node = MaintenanceNode(variants=[strong, weak], active_index=0)
        # Degrade the strong variant's statistics below the weak one.
        strong.stats.n_left_plus = 5
        assert node.rescore()
        assert node.active is weak


class TestTraversal:
    def test_iter_nodes_covers_inactive_variants(self):
        variant_a = make_variant(9)
        variant_b = make_variant(7)
        node = MaintenanceNode(variants=[variant_a, variant_b])
        nodes = list(iter_nodes(node))
        # 1 maintenance node + 2 leaves per variant.
        assert len(nodes) == 5
        assert sum(isinstance(n, Leaf) for n in nodes) == 4

    def test_census_counts_node_kinds(self):
        inner = SplitNode(
            split=NumericSplit(feature=0, cut=2),
            stats=SplitStats(10, 5, 5, 3),
            left=Leaf(5, 3),
            right=Leaf(5, 2),
        )
        maintenance = MaintenanceNode(variants=[make_variant(9)])
        root = SplitNode(
            split=NumericSplit(feature=0, cut=5),
            stats=SplitStats(30, 15, 10, 5),
            left=inner,
            right=maintenance,
        )
        counts = census(root)
        assert counts.n_robust_splits == 2
        assert counts.n_maintenance_nodes == 1
        assert counts.n_leaves == 4
        assert counts.n_nodes == 7
        assert counts.non_robust_fraction == pytest.approx(1 / 7)

    def test_census_of_single_leaf(self):
        counts = census(Leaf(3, 1))
        assert counts.n_nodes == 1
        assert counts.non_robust_fraction == 0.0
