"""Equivalence and maintenance tests for the packed ensemble kernel.

The packed kernel must be an *exact* drop-in for the per-record prediction
path: identical labels and bit-for-bit identical probabilities -- on a
fresh model, in the middle of an unlearning campaign (O(1) leaf
write-through), after a forced maintenance-variant switch (single-tree
repack) and across a snapshot/restore round trip. The fast cases run on
the shared fixtures; the full registry matrix is ``slow``-marked and runs
under ``make test-all``.
"""

import copy

import numpy as np
import pytest

from repro.core.ensemble import HedgeCutClassifier
from repro.core.nodes import MaintenanceNode, SplitNode
from repro.core.packed import LEAF_MARKER, PackedEnsemble
from repro.datasets.registry import available_datasets, load_dataset
from repro.evaluation.splits import train_test_split
from repro.persistence.snapshot import load_snapshot, save_snapshot

from tests.conftest import make_random_dataset


def _scalar_labels(model, dataset):
    return np.asarray(
        [model.predict(dataset.record(row).values) for row in range(dataset.n_rows)],
        dtype=np.uint8,
    )


def _scalar_probas(model, dataset):
    return np.asarray(
        [model.predict_proba(dataset.record(row).values) for row in range(dataset.n_rows)]
    )


def assert_packed_equivalent(model, dataset):
    """Packed labels/probabilities match the per-record path exactly."""
    matrix = dataset.feature_matrix()
    assert np.array_equal(model.predict_rows(matrix), _scalar_labels(model, dataset))
    assert np.array_equal(
        model.predict_proba_rows(matrix), _scalar_probas(model, dataset)
    )


def _force_variant_switch(model) -> bool:
    """Flip the active variant of the first switchable maintenance node.

    Returns True when a node was switched (and the tree repacked).
    """
    for index, tree in enumerate(model.trees):
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if isinstance(node, MaintenanceNode):
                if len(node.variants) > 1:
                    node.active_index = (node.active_index + 1) % len(node.variants)
                    model.invalidate_tree(index)
                    return True
                active = node.active
                stack.extend((active.left, active.right))
            elif isinstance(node, SplitNode):
                stack.extend((node.left, node.right))
    return False


class TestFreshEquivalence:
    def test_labels_and_probas_match_per_record(
        self, fitted_model_session, income_split
    ):
        _, test = income_split
        assert_packed_equivalent(fitted_model_session, test)

    def test_matches_legacy_batch_path(self, fitted_model_session, income_split):
        _, test = income_split
        legacy = fitted_model_session.predict_batch_legacy(test)
        assert np.array_equal(fitted_model_session.predict_batch(test), legacy)

    def test_scalar_walk_matches_per_record(self, fitted_model_session, income_split):
        _, test = income_split
        packed = fitted_model_session.packed
        for row in range(0, test.n_rows, 7):
            values = test.record(row).values
            assert packed.predict_one(values) == fitted_model_session.predict(values)
            assert packed.predict_proba_one(values) == fitted_model_session.predict_proba(
                values
            )

    def test_chunked_traversal_is_chunk_size_invariant(
        self, fitted_model_session, income_split
    ):
        _, test = income_split
        matrix = test.feature_matrix()
        reference = fitted_model_session.predict_proba_rows(matrix)
        tiny_chunks = PackedEnsemble(
            fitted_model_session.trees, fitted_model_session.schema, chunk_rows=7
        )
        assert np.array_equal(tiny_chunks.predict_proba_rows(matrix), reference)


class TestStructure:
    def test_children_are_adjacent(self, fitted_model_session):
        packed = fitted_model_session.packed
        internal = packed.feature != LEAF_MARKER
        rights = packed.right[internal]
        # The traversal computes left = right - 1; both children must be
        # real slots inside the pack.
        assert (rights >= 1).all()
        assert (rights < packed.n_slots).all()

    def test_leaf_payloads_cover_leaf_arrays(self, fitted_model_session):
        packed = fitted_model_session.packed
        leaf_payloads = packed.payload[packed.feature == LEAF_MARKER]
        # Every leaf slot (live or reserved-span padding) must point at a
        # valid leaf row, and the live leaves must occupy distinct rows.
        assert (leaf_payloads >= 0).all()
        assert (leaf_payloads < packed.n_leaves).all()
        live_rows = sorted(packed.leaf_index.values())
        assert len(live_rows) == len(set(live_rows))
        assert set(live_rows) <= set(leaf_payloads.tolist())

    def test_rejects_empty_ensemble_and_bad_chunking(self, fitted_model_session):
        with pytest.raises(ValueError):
            PackedEnsemble([], fitted_model_session.schema)
        with pytest.raises(ValueError):
            PackedEnsemble(
                fitted_model_session.trees, fitted_model_session.schema, chunk_rows=0
            )

    def test_rejects_non_matrix_input(self, fitted_model_session):
        with pytest.raises(ValueError):
            fitted_model_session.packed.predict_rows(np.arange(3))


class TestUnlearningMaintenance:
    def test_equivalent_mid_campaign(self, fitted_model, income_split):
        train, test = income_split
        fitted_model.predict_batch(test)  # build the pack up front
        for row in range(0, 40):
            fitted_model.unlearn(train.record(row), allow_budget_overrun=True)
            if row % 8 == 0:
                assert_packed_equivalent(fitted_model, test)
        assert_packed_equivalent(fitted_model, test)

    def test_leaf_write_through_mirrors_leaf_stats(self, fitted_model, income_split):
        train, test = income_split
        before_total = int(fitted_model.packed.leaf_n.sum())
        fitted_model.unlearn(train.record(0), allow_budget_overrun=True)
        # Whether the deletion only decremented leaves (write-through) or
        # also switched a variant (in-place span splice), the flat arrays
        # must mirror the live leaf objects exactly (padded rows are zero).
        live_total = sum(
            leaf.n for leaf in fitted_model.packed._leaf_objects if leaf is not None
        )
        assert int(fitted_model.packed.leaf_n.sum()) == live_total
        assert int(fitted_model.packed.leaf_n.sum()) <= before_total

    def test_equivalent_after_forced_variant_switch(self, fitted_model, income_split):
        _, test = income_split
        fitted_model.predict_batch(test)
        switched = _force_variant_switch(fitted_model)
        assert switched, "fixture model has no switchable maintenance node"
        assert_packed_equivalent(fitted_model, test)

    def test_learn_one_keeps_pack_in_sync(self, fitted_model, income_split):
        train, test = income_split
        fitted_model.predict_batch(test)
        fitted_model.learn_one(train.record(1))
        assert_packed_equivalent(fitted_model, test)

    def test_deepcopy_write_through_targets_copied_leaves(
        self, fitted_model, income_split
    ):
        train, test = income_split
        fitted_model.predict_batch(test)  # pack exists before the copy
        clone = copy.deepcopy(fitted_model)
        baseline = fitted_model.predict_proba_rows(test.feature_matrix())
        for row in range(10):
            clone.unlearn(train.record(row), allow_budget_overrun=True)
        assert_packed_equivalent(clone, test)
        # The original model's pack must be untouched by the clone's campaign.
        assert np.array_equal(
            fitted_model.predict_proba_rows(test.feature_matrix()), baseline
        )


class TestSingleRowFastPath:
    """The n==1 scalar walk must be bit-identical to the chunked kernel.

    Single-record requests dominate online serving; the packed entry
    points special-case them with a plain per-tree walk instead of the
    level-synchronous frontier machinery. Equivalence is exact, not
    approximate: the fast path uses the same int64 leaf counts and the
    same float64 operation order as the vectorised expression.
    """

    def test_single_row_matrices_match_batch_slices(
        self, fitted_model_session, income_split
    ):
        _, test = income_split
        packed = fitted_model_session.packed
        matrix = test.feature_matrix()
        batch_probas = packed.predict_proba_rows(matrix)
        batch_labels = packed.predict_rows(matrix)
        batch_votes = packed.predict_votes_rows(matrix)
        for row in range(0, test.n_rows, 9):
            single = matrix[row : row + 1]
            assert packed.predict_proba_rows(single)[0] == batch_probas[row]
            assert packed.predict_rows(single)[0] == batch_labels[row]
            assert packed.predict_votes_rows(single)[0] == batch_votes[row]

    def test_single_row_dtypes_match_batch_path(self, fitted_model_session, income_split):
        _, test = income_split
        packed = fitted_model_session.packed
        single = test.feature_matrix()[:1]
        assert packed.predict_proba_rows(single).dtype == np.float64
        assert packed.predict_rows(single).dtype == np.uint8
        assert packed.predict_votes_rows(single).dtype == np.int64

    def test_fast_path_survives_unlearning(self, fitted_model, income_split):
        train, test = income_split
        for row in range(10):
            fitted_model.unlearn(train.record(row), allow_budget_overrun=True)
        packed = fitted_model.packed
        matrix = test.feature_matrix()
        batch = packed.predict_proba_rows(matrix)
        for row in range(0, test.n_rows, 13):
            assert packed.predict_proba_rows(matrix[row : row + 1])[0] == batch[row]


class TestSnapshotRoundTrip:
    def test_restore_then_pack_is_identical(self, fitted_model, income_split, tmp_path):
        train, test = income_split
        for row in range(8):
            fitted_model.unlearn(train.record(row), allow_budget_overrun=True)
        expected = fitted_model.predict_proba_batch(test)

        path = tmp_path / "model.hedgecut"
        save_snapshot(fitted_model, path)
        restored, _ = load_snapshot(path)
        assert np.array_equal(restored.predict_proba_batch(test), expected)
        assert_packed_equivalent(restored, test)


@pytest.mark.slow
class TestFullRegistryMatrix:
    """The equivalence matrix over every registry dataset (``make test-all``)."""

    @pytest.mark.parametrize("name", sorted(available_datasets()))
    def test_packed_equivalence_through_lifecycle(self, name, tmp_path):
        data = load_dataset(name, n_rows=1200, seed=3)
        train, test = train_test_split(data, test_fraction=0.25, seed=3)
        model = HedgeCutClassifier(n_trees=4, epsilon=0.02, seed=5).fit(train)

        # Fresh model.
        assert_packed_equivalent(model, test)

        # Mid unlearning campaign (leaf write-through + possible switches).
        for row in range(30):
            model.unlearn(train.record(row), allow_budget_overrun=True)
        assert_packed_equivalent(model, test)

        # Forced variant switch (single-tree repack), where one exists.
        if _force_variant_switch(model):
            assert_packed_equivalent(model, test)

        # Snapshot -> restore -> pack identity.
        path = tmp_path / f"{name}.hedgecut"
        save_snapshot(model, path)
        restored, _ = load_snapshot(path)
        assert np.array_equal(
            restored.predict_proba_batch(test), model.predict_proba_batch(test)
        )
        assert_packed_equivalent(restored, test)


def test_random_dataset_equivalence():
    """Hand-built mixed-schema dataset (numeric + categorical routing)."""
    data = make_random_dataset(n_rows=260, seed=23)
    model = HedgeCutClassifier(n_trees=3, epsilon=0.05, seed=7).fit(data)
    assert_packed_equivalent(model, data)
