"""Tests for process-pool parallel training (Section 5 parallelism)."""

import numpy as np
import pytest

from repro.core.ensemble import HedgeCutClassifier
from repro.core.params import HedgeCutParams

from tests.conftest import make_random_dataset


class TestParallelTraining:
    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            HedgeCutParams(n_jobs=0)

    def test_parallel_equals_sequential(self):
        """Trees are fully independent, so worker processes must produce
        exactly the sequential result for the same seed."""
        dataset = make_random_dataset(n_rows=250, seed=61)
        sequential = HedgeCutClassifier(n_trees=4, seed=61).fit(dataset)
        parallel = HedgeCutClassifier(n_trees=4, seed=61, n_jobs=2).fit(dataset)
        assert np.array_equal(
            sequential.predict_batch(dataset), parallel.predict_batch(dataset)
        )
        assert (
            sequential.node_census().n_nodes == parallel.node_census().n_nodes
        )

    def test_parallel_model_supports_unlearning(self):
        dataset = make_random_dataset(n_rows=250, seed=62)
        model = HedgeCutClassifier(n_trees=2, epsilon=0.02, seed=62, n_jobs=2)
        model.fit(dataset)
        report = model.unlearn(dataset.record(0))
        assert report.leaves_updated >= 2

    def test_single_core_degrades_to_sequential(self, monkeypatch):
        """On a one-core machine a pool only adds spawn + dataset-copy
        overhead: ``n_jobs > 1`` must silently take the sequential path
        (and still train the identical model)."""
        import concurrent.futures

        def _no_pool(*args, **kwargs):
            raise AssertionError("ProcessPoolExecutor must not be spawned")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _no_pool
        )
        import repro.core.ensemble as ensemble_module

        monkeypatch.setattr(ensemble_module.os, "cpu_count", lambda: 1)
        dataset = make_random_dataset(n_rows=200, seed=61)
        degraded = HedgeCutClassifier(n_trees=4, seed=61, n_jobs=4).fit(dataset)
        sequential = HedgeCutClassifier(n_trees=4, seed=61).fit(dataset)
        assert np.array_equal(
            degraded.predict_batch(dataset), sequential.predict_batch(dataset)
        )

    def test_single_tree_never_pays_for_a_pool(self, monkeypatch):
        """Effective parallelism is capped by the tree count: one tree
        with many jobs must not spawn workers either."""
        import concurrent.futures

        def _no_pool(*args, **kwargs):
            raise AssertionError("ProcessPoolExecutor must not be spawned")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _no_pool
        )
        dataset = make_random_dataset(n_rows=200, seed=61)
        model = HedgeCutClassifier(n_trees=1, seed=61, n_jobs=8).fit(dataset)
        assert model.is_fitted

    def test_save_load_preserves_n_jobs(self, tmp_path):
        dataset = make_random_dataset(n_rows=200, seed=63)
        model = HedgeCutClassifier(n_trees=2, seed=63, n_jobs=2).fit(dataset)
        model.save(tmp_path / "m.bin")
        restored = HedgeCutClassifier.load(tmp_path / "m.bin")
        assert restored.params.n_jobs == 2
