"""Tests for hyperparameter validation and derived quantities."""

import pytest

from repro.core.params import HedgeCutParams


class TestValidation:
    def test_defaults_are_valid(self):
        params = HedgeCutParams()
        assert params.n_trees == 100
        assert params.epsilon == 0.001
        assert params.max_tries_per_split == 5
        assert params.min_leaf_size == 2

    @pytest.mark.parametrize(
        "field, value",
        [
            ("n_trees", 0),
            ("epsilon", 0.0),
            ("epsilon", 1.5),
            ("max_tries_per_split", 0),
            ("min_leaf_size", 0),
            ("n_candidates", 0),
            ("max_maintenance_depth", -1),
        ],
    )
    def test_rejects_invalid_values(self, field, value):
        with pytest.raises(ValueError):
            HedgeCutParams(**{field: value})

    def test_rejects_unknown_robustness_mode(self):
        with pytest.raises(ValueError):
            HedgeCutParams(robustness_mode="maybe")

    @pytest.mark.parametrize("mode", ["greedy", "verified", "off"])
    def test_accepts_known_robustness_modes(self, mode):
        assert HedgeCutParams(robustness_mode=mode).robustness_mode == mode

    def test_unbounded_maintenance_depth_allowed(self):
        assert HedgeCutParams(max_maintenance_depth=None).max_maintenance_depth is None


class TestDeletionBudget:
    def test_paper_example(self):
        # 10,000 examples at 0.1% yields a budget of 10 (Section 4.2).
        assert HedgeCutParams(epsilon=0.001).deletion_budget(10_000) == 10

    def test_budget_is_at_least_one(self):
        assert HedgeCutParams(epsilon=0.001).deletion_budget(10) == 1

    def test_budget_floors(self):
        assert HedgeCutParams(epsilon=0.001).deletion_budget(1999) == 1
        assert HedgeCutParams(epsilon=0.001).deletion_budget(2999) == 2

    def test_rejects_empty_training_set(self):
        with pytest.raises(ValueError):
            HedgeCutParams().deletion_budget(0)


class TestCandidateCount:
    def test_sqrt_default(self):
        params = HedgeCutParams()
        assert params.candidates_for(12) == 3
        assert params.candidates_for(17) == 4
        assert params.candidates_for(1) == 1

    def test_explicit_override(self):
        assert HedgeCutParams(n_candidates=7).candidates_for(100) == 7
