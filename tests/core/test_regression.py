"""Tests for the regression extension."""

import numpy as np
import pytest

from repro.core.exceptions import NotFittedError, UnlearningError
from repro.core.regression import (
    HedgeCutRegressor,
    RegressionDataset,
    RegressionLeaf,
    RegressionRecord,
)
from repro.datasets.registry import load_dataset


@pytest.fixture(scope="module")
def regression_data():
    base = load_dataset("credit", n_rows=500, seed=9)
    rng = np.random.default_rng(9)
    # A tree-learnable target: depends on two encoded features plus noise.
    targets = (
        2.0 * base.column(0).astype(np.float64)
        + 3.0 * (base.column(1).astype(np.float64) > 10)
        + rng.normal(0.0, 0.5, size=base.n_rows)
    )
    return RegressionDataset.from_dataset(base, targets)


class TestRegressionLeaf:
    def test_prediction_is_the_mean(self):
        leaf = RegressionLeaf(n=4, total=10.0, total_sq=30.0)
        assert leaf.predict() == pytest.approx(2.5)

    def test_variance(self):
        leaf = RegressionLeaf(n=2, total=4.0, total_sq=10.0)
        # values {1, 3}: mean 2, variance 1.
        assert leaf.variance() == pytest.approx(1.0)

    def test_empty_leaf(self):
        leaf = RegressionLeaf(n=0, total=0.0, total_sq=0.0)
        assert leaf.predict() == 0.0
        assert leaf.variance() == 0.0


class TestRegressorTraining:
    def test_fit_and_predict(self, regression_data):
        model = HedgeCutRegressor(n_trees=5, seed=0).fit(regression_data)
        predictions = model.predict_batch(regression_data)
        assert predictions.shape == (regression_data.n_rows,)
        # The model must explain a substantial part of the variance.
        residual = regression_data.targets - predictions
        assert residual.var() < 0.5 * regression_data.targets.var()

    def test_unfitted_rejects_predict(self):
        with pytest.raises(NotFittedError):
            HedgeCutRegressor().predict((0, 0))

    def test_deterministic_per_seed(self, regression_data):
        first = HedgeCutRegressor(n_trees=3, seed=4).fit(regression_data)
        second = HedgeCutRegressor(n_trees=3, seed=4).fit(regression_data)
        assert np.allclose(
            first.predict_batch(regression_data), second.predict_batch(regression_data)
        )

    def test_empty_dataset_rejected(self, regression_data):
        empty = RegressionDataset(
            schema=regression_data.schema,
            columns=tuple(column[:0] for column in regression_data.columns),
            targets=regression_data.targets[:0],
        )
        with pytest.raises(ValueError):
            HedgeCutRegressor(n_trees=1).fit(empty)


class TestRegressionUnlearning:
    def test_unlearn_updates_leaf_means(self, regression_data):
        model = HedgeCutRegressor(n_trees=3, epsilon=0.05, seed=1).fit(regression_data)
        record = regression_data.record(0)
        before = model.predict(record.values)
        for row in range(model.remaining_deletion_budget):
            model.unlearn(regression_data.record(row))
        after = model.predict(record.values)
        # Prediction remains finite and the budget is consumed.
        assert np.isfinite(after)
        assert model.remaining_deletion_budget == 0
        assert isinstance(before, float)

    def test_unlearning_empty_leaf_raises(self):
        model = HedgeCutRegressor(n_trees=1, seed=0)
        single = RegressionDataset(
            schema=load_dataset("credit", n_rows=400, seed=1).schema,
            columns=tuple(
                load_dataset("credit", n_rows=400, seed=1).column(index)[:2]
                for index in range(8)
            ),
            targets=np.asarray([1.0, 2.0]),
        )
        model.fit(single)
        record = single.record(0)
        model.unlearn(record)
        model.unlearn(record)
        with pytest.raises(UnlearningError):
            model.unlearn(record)

    def test_unlearn_returns_report(self, regression_data):
        model = HedgeCutRegressor(n_trees=3, epsilon=0.05, seed=1).fit(regression_data)
        report = model.unlearn(regression_data.record(0))
        # One leaf per tree, split traversals counted as random visits
        # (regression splits are statistics-frozen), never any switches.
        assert report.leaves_updated == 3
        assert report.random_nodes_visited > 0
        assert report.variant_switches == 0

    def test_inconsistent_unlearn_mutates_nothing(self):
        data = load_dataset("credit", n_rows=400, seed=1)
        single = RegressionDataset(
            schema=data.schema,
            columns=tuple(data.column(index)[:2] for index in range(8)),
            targets=np.asarray([1.0, 2.0]),
        )
        model = HedgeCutRegressor(n_trees=3, seed=0).fit(single)
        record = single.record(0)
        model.unlearn(record)
        model.unlearn(record)

        def leaves():
            found = []
            for root in model._roots:
                node = root
                while not isinstance(node, RegressionLeaf):
                    goes_left = node.split.goes_left_value(
                        record.values[node.split.feature]
                    )
                    node = node.left if goes_left else node.right
                found.append(node)
            return found

        snapshot = [(leaf.n, leaf.total, leaf.total_sq) for leaf in leaves()]
        assert any(n == 0 for n, _, _ in snapshot)  # at least one drained
        # The failing call must be planned before applied: no leaf may go
        # negative and no totals may move in ANY tree.
        with pytest.raises(UnlearningError):
            model.unlearn(record)
        assert [(leaf.n, leaf.total, leaf.total_sq) for leaf in leaves()] == snapshot

    def test_unlearning_drift_is_small(self, regression_data):
        model = HedgeCutRegressor(n_trees=3, epsilon=0.01, seed=2).fit(regression_data)
        removed = list(range(model.remaining_deletion_budget))
        for row in removed:
            model.unlearn(regression_data.record(row))
        drift = model.unlearning_drift(regression_data, removed)
        spread = float(regression_data.targets.std())
        assert drift < 0.5 * spread


class TestRegressionDataset:
    def test_from_dataset_shares_columns(self):
        base = load_dataset("credit", n_rows=400, seed=2)
        targets = np.arange(base.n_rows, dtype=np.float64)
        data = RegressionDataset.from_dataset(base, targets)
        assert data.n_rows == base.n_rows
        assert data.n_features == base.n_features

    def test_target_length_mismatch_rejected(self):
        base = load_dataset("credit", n_rows=400, seed=2)
        with pytest.raises(ValueError):
            RegressionDataset.from_dataset(base, np.zeros(3))

    def test_record_access(self, regression_data):
        record = regression_data.record(5)
        assert isinstance(record, RegressionRecord)
        assert len(record.values) == regression_data.n_features
