"""Tests for the greedy robustness analysis and the exhaustive oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.robustness import (
    REMOVAL_CONFIGS,
    enumerate_is_robust,
    greedy_precondition_holds,
    is_robust,
    weaken_split,
)
from repro.core.splits import SplitStats


@st.composite
def split_pair(draw, max_n: int = 40):
    """Two consistent split statistics over the same sample."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    n_plus = draw(st.integers(min_value=0, max_value=n))

    def side(n_left):
        low = max(0, n_plus - (n - n_left))
        high = min(n_plus, n_left)
        return draw(st.integers(min_value=low, max_value=high))

    n_left_a = draw(st.integers(min_value=1, max_value=n - 1))
    n_left_b = draw(st.integers(min_value=1, max_value=n - 1))
    first = SplitStats(n, n_plus, n_left_a, side(n_left_a))
    second = SplitStats(n, n_plus, n_left_b, side(n_left_b))
    if first.gini_gain() >= second.gini_gain():
        return first, second
    return second, first


class TestWeakenSplit:
    def test_enumerates_eight_configs(self):
        assert len(REMOVAL_CONFIGS) == 8
        assert len(set(REMOVAL_CONFIGS)) == 8

    def test_returns_none_when_nothing_removable(self):
        empty = SplitStats(0, 0, 0, 0)
        assert weaken_split(empty, empty) is None

    def test_applies_most_damaging_removal(self):
        best = SplitStats(n=20, n_plus=10, n_left=10, n_left_plus=9)
        candidate = SplitStats(n=20, n_plus=10, n_left=10, n_left_plus=5)
        step = weaken_split(best, candidate)
        assert step is not None
        # The returned statistics reflect exactly one removal.
        assert step.best_stats.n == 19
        assert step.candidate_stats.n == 19
        # The chosen configuration minimises the gain difference among all
        # applicable configurations.
        deltas = []
        for positive, best_left, cand_left in REMOVAL_CONFIGS:
            if best.can_remove(positive, best_left) and candidate.can_remove(
                positive, cand_left
            ):
                weakened_best = best.after_removal(positive, best_left)
                weakened_cand = candidate.after_removal(positive, cand_left)
                deltas.append(weakened_best.gini_gain() - weakened_cand.gini_gain())
        assert step.delta == pytest.approx(min(deltas))

    def test_respects_applicability(self):
        # Best split has no positives on the left: configs touching that
        # quadrant must not be chosen.
        best = SplitStats(n=10, n_plus=5, n_left=5, n_left_plus=0)
        candidate = SplitStats(n=10, n_plus=5, n_left=5, n_left_plus=3)
        step = weaken_split(best, candidate)
        assert step is not None
        positive, best_left, _ = step.config
        assert not (positive and best_left)


class TestIsRobust:
    def test_zero_budget_is_always_robust(self):
        best = SplitStats(n=10, n_plus=5, n_left=5, n_left_plus=4)
        candidate = SplitStats(n=10, n_plus=5, n_left=5, n_left_plus=3)
        assert is_robust(best, candidate, 0).robust

    def test_negative_budget_rejected(self):
        stats = SplitStats(10, 5, 5, 4)
        with pytest.raises(ValueError):
            is_robust(stats, stats, -1)

    def test_large_gap_is_robust(self):
        best = SplitStats(n=100, n_plus=50, n_left=50, n_left_plus=50)
        candidate = SplitStats(n=100, n_plus=50, n_left=50, n_left_plus=25)
        assert is_robust(best, candidate, 3).robust

    def test_tight_race_is_not_robust(self):
        # Nearly identical gains: one removal can reorder them.
        best = SplitStats(n=20, n_plus=10, n_left=10, n_left_plus=8)
        candidate = SplitStats(n=20, n_plus=10, n_left=10, n_left_plus=8)
        result = is_robust(best, candidate, 5)
        assert not result.robust
        assert result.reversed_after is not None
        assert 1 <= result.reversed_after <= 5

    @given(split_pair(), st.integers(min_value=0, max_value=4))
    @settings(max_examples=150, deadline=None)
    def test_prune_never_changes_the_verdict(self, pair, budget):
        best, candidate = pair
        pruned = is_robust(best, candidate, budget, prune=True)
        unpruned = is_robust(best, candidate, budget, prune=False)
        assert pruned.robust == unpruned.robust

    @given(split_pair(max_n=25), st.integers(min_value=1, max_value=3))
    @settings(max_examples=100, deadline=None)
    def test_greedy_non_robust_verdicts_are_sound(self, pair, budget):
        """A greedy "non-robust" answer is constructive: the oracle agrees."""
        best, candidate = pair
        if not is_robust(best, candidate, budget).robust:
            assert not enumerate_is_robust(best, candidate, budget)

    @given(split_pair(max_n=25), st.integers(min_value=1, max_value=3))
    @settings(max_examples=100, deadline=None)
    def test_greedy_agrees_with_oracle_when_precondition_holds(self, pair, budget):
        """Within the paper's precondition regime the greedy test is exact.

        The rare disagreements live outside the precondition (quadrant
        counts below the budget) plus a measured ~0.5% corner documented in
        EXPERIMENTS.md; this property pins the overwhelmingly common case.
        """
        best, candidate = pair
        trusted = greedy_precondition_holds(best, budget) and greedy_precondition_holds(
            candidate, budget
        )
        gap = best.gini_gain() - candidate.gini_gain()
        # Restrict to clearly separated pairs, where one-step lookahead
        # cannot be trapped by plateau effects.
        if trusted and gap > 0.05:
            greedy = is_robust(best, candidate, budget).robust
            oracle = enumerate_is_robust(best, candidate, budget)
            assert greedy == oracle


class TestEnumerateIsRobust:
    def test_agrees_on_trivial_zero_budget(self):
        best = SplitStats(10, 5, 5, 4)
        candidate = SplitStats(10, 5, 5, 3)
        assert enumerate_is_robust(best, candidate, 0)

    def test_detects_single_removal_reversal(self):
        # Gains are tied; the oracle must find some removal that puts the
        # candidate strictly ahead.
        best = SplitStats(n=8, n_plus=4, n_left=4, n_left_plus=3)
        candidate = SplitStats(n=8, n_plus=4, n_left=4, n_left_plus=3)
        assert not enumerate_is_robust(best, candidate, 2)

    def test_honours_quadrant_floors(self):
        # The only damaging removals would need records that do not exist.
        best = SplitStats(n=4, n_plus=2, n_left=2, n_left_plus=2)
        candidate = SplitStats(n=4, n_plus=2, n_left=2, n_left_plus=0)
        assert enumerate_is_robust(best, candidate, 1)

    def test_rejects_negative_budget(self):
        stats = SplitStats(10, 5, 5, 4)
        with pytest.raises(ValueError):
            enumerate_is_robust(stats, stats, -2)


class TestPrecondition:
    def test_holds_when_all_quadrants_large(self):
        stats = SplitStats(n=40, n_plus=20, n_left=20, n_left_plus=10)
        assert greedy_precondition_holds(stats, 5)

    def test_fails_on_small_quadrant(self):
        stats = SplitStats(n=40, n_plus=20, n_left=20, n_left_plus=19)
        assert not greedy_precondition_holds(stats, 5)


class TestBatchedGreedyEquivalence:
    """The frontier trainer's vectorised robustness path must reproduce the
    scalar ``is_robust`` verdict bit-for-bit: ``prescreen_robust_pairs``
    may only claim robust where the scalar prune would, and
    ``greedy_weaken_batch`` must follow the same weakening trajectory
    (same argmin tie-breaks over the eight removal configurations)."""

    @staticmethod
    def _random_pairs(seed: int, count: int, near_tie: bool):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = rng.integers(5, 400, size=count)
        n_plus = np.array([rng.integers(1, v) for v in n])

        def draw_side(anchor=None, anchor_plus=None):
            if anchor is None:
                left = np.array([rng.integers(1, v) for v in n])
            else:
                left = np.clip(anchor + rng.integers(-2, 3, size=count), 1, n - 1)
            low = np.maximum(0, n_plus - (n - left))
            high = np.minimum(n_plus, left)
            if anchor_plus is None:
                left_plus = np.array(
                    [rng.integers(lo, hi + 1) for lo, hi in zip(low, high)]
                )
            else:
                left_plus = np.clip(
                    anchor_plus + rng.integers(-2, 3, size=count), low, high
                )
            return left, left_plus

        best_left, best_left_plus = draw_side()
        if near_tie:
            cand_left, cand_left_plus = draw_side(best_left, best_left_plus)
        else:
            cand_left, cand_left_plus = draw_side()
        budgets = rng.integers(0, 41, size=count)
        return n, n_plus, best_left, best_left_plus, cand_left, cand_left_plus, budgets

    @pytest.mark.parametrize("near_tie", [True, False])
    def test_batch_path_matches_scalar_is_robust(self, near_tie):
        import numpy as np

        from repro.core.robustness import greedy_weaken_batch, prescreen_robust_pairs

        count = 300
        n, n_plus, bl, blp, cl, clp, budgets = self._random_pairs(
            23 if near_tie else 24, count, near_tie
        )
        screened = prescreen_robust_pairs(
            (n, n_plus, bl, blp), (n, n_plus, cl, clp), budgets
        )
        verdicts = screened.copy()
        undecided = np.flatnonzero(~screened)
        verdicts[undecided] = greedy_weaken_batch(
            n[undecided],
            n_plus[undecided],
            bl[undecided],
            blp[undecided],
            cl[undecided],
            clp[undecided],
            budgets[undecided],
        )
        for index in range(count):
            best = SplitStats(
                n=int(n[index]),
                n_plus=int(n_plus[index]),
                n_left=int(bl[index]),
                n_left_plus=int(blp[index]),
            )
            candidate = SplitStats(
                n=int(n[index]),
                n_plus=int(n_plus[index]),
                n_left=int(cl[index]),
                n_left_plus=int(clp[index]),
            )
            scalar = is_robust(best, candidate, int(budgets[index])).robust
            assert scalar == bool(verdicts[index]), (
                f"pair {index}: scalar {scalar}, batch {bool(verdicts[index])}"
            )

    @pytest.mark.parametrize("near_tie", [True, False])
    @pytest.mark.parametrize("prune", [True, False])
    def test_windowed_batch_matches_stepwise_reference(self, near_tie, prune):
        from repro.core.robustness import (
            greedy_weaken_batch,
            greedy_weaken_batch_stepwise,
        )

        count = 1500
        n, n_plus, bl, blp, cl, clp, budgets = self._random_pairs(
            31 if near_tie else 32, count, near_tie
        )
        fast = greedy_weaken_batch(n, n_plus, bl, blp, cl, clp, budgets, prune=prune)
        reference = greedy_weaken_batch_stepwise(
            n, n_plus, bl, blp, cl, clp, budgets, prune=prune
        )
        assert (fast == reference).all()

    def test_prescreen_is_sound(self):
        """Everything the pre-screen calls robust, the scalar prune confirms."""
        import numpy as np

        from repro.core.robustness import prescreen_robust_pairs

        n, n_plus, bl, blp, cl, clp, budgets = self._random_pairs(41, 400, False)
        screened = prescreen_robust_pairs(
            (n, n_plus, bl, blp), (n, n_plus, cl, clp), budgets
        )
        for index in np.flatnonzero(screened):
            best = SplitStats(
                n=int(n[index]),
                n_plus=int(n_plus[index]),
                n_left=int(bl[index]),
                n_left_plus=int(blp[index]),
            )
            candidate = SplitStats(
                n=int(n[index]),
                n_plus=int(n_plus[index]),
                n_left=int(cl[index]),
                n_left_plus=int(clp[index]),
            )
            assert is_robust(best, candidate, int(budgets[index])).robust
