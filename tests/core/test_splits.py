"""Unit and property tests for split statistics and Gini gain."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.splits import (
    CategoricalSplit,
    NumericSplit,
    SplitStats,
    count_split,
    gini_impurity,
)
from repro.dataprep.dataset import Dataset, FeatureKind, FeatureSchema
from repro.vectorized.kernels import SplitCounts


def consistent_stats() -> st.SearchStrategy[SplitStats]:
    """Strategy generating internally consistent split statistics."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=0, max_value=200))
        n_plus = draw(st.integers(min_value=0, max_value=n))
        n_left = draw(st.integers(min_value=0, max_value=n))
        low = max(0, n_plus - (n - n_left))
        high = min(n_plus, n_left)
        n_left_plus = draw(st.integers(min_value=low, max_value=high))
        return SplitStats(n=n, n_plus=n_plus, n_left=n_left, n_left_plus=n_left_plus)

    return build()


class TestGiniImpurity:
    def test_pure_partition_has_zero_impurity(self):
        assert gini_impurity(10, 0) == 0.0
        assert gini_impurity(10, 10) == 0.0

    def test_balanced_partition_has_maximal_impurity(self):
        assert gini_impurity(10, 5) == pytest.approx(0.5)

    def test_empty_partition_defined_as_zero(self):
        assert gini_impurity(0, 0) == 0.0

    @given(st.integers(1, 1000), st.data())
    def test_impurity_bounds(self, n, data):
        k = data.draw(st.integers(0, n))
        assert 0.0 <= gini_impurity(n, k) <= 0.5


class TestSplitStatsDerived:
    def test_quadrants(self):
        stats = SplitStats(n=10, n_plus=6, n_left=4, n_left_plus=3)
        assert stats.quadrants() == (3, 1, 3, 3)
        assert stats.n_minus == 4
        assert stats.n_right == 6
        assert stats.min_quadrant() == 1

    def test_validate_accepts_consistent(self):
        SplitStats(n=5, n_plus=2, n_left=3, n_left_plus=1).validate()

    def test_validate_rejects_negative_quadrant(self):
        bad = SplitStats(n=5, n_plus=2, n_left=1, n_left_plus=2)
        with pytest.raises(ValueError):
            bad.validate()

    @given(consistent_stats())
    def test_generated_stats_are_consistent(self, stats):
        stats.validate()


class TestGiniGain:
    @given(consistent_stats())
    def test_gain_is_non_negative(self, stats):
        # Concavity of the Gini impurity: a split never increases impurity.
        assert stats.gini_gain() >= -1e-12

    @given(consistent_stats())
    def test_gain_is_bounded(self, stats):
        assert stats.gini_gain() <= 0.5 + 1e-12

    def test_empty_stats_have_zero_gain(self):
        assert SplitStats(0, 0, 0, 0).gini_gain() == 0.0

    def test_perfect_split_gains_parent_impurity(self):
        # Left holds all positives, right all negatives.
        stats = SplitStats(n=10, n_plus=5, n_left=5, n_left_plus=5)
        assert stats.gini_gain() == pytest.approx(0.5)

    def test_uninformative_split_gains_nothing(self):
        # Both sides mirror the parent distribution.
        stats = SplitStats(n=10, n_plus=4, n_left=5, n_left_plus=2)
        assert stats.gini_gain() == pytest.approx(0.0)

    @given(consistent_stats())
    def test_gain_invariant_under_side_swap(self, stats):
        swapped = SplitStats(
            n=stats.n,
            n_plus=stats.n_plus,
            n_left=stats.n_right,
            n_left_plus=stats.n_right_plus,
        )
        assert stats.gini_gain() == pytest.approx(swapped.gini_gain())

    def test_label_constant_data_has_zero_gain(self):
        stats = SplitStats(n=10, n_plus=0, n_left=4, n_left_plus=0)
        assert stats.gini_gain() == pytest.approx(0.0)


class TestRemoval:
    def test_remove_updates_counts(self):
        stats = SplitStats(n=10, n_plus=6, n_left=4, n_left_plus=3)
        stats.remove(positive=True, left=True)
        assert (stats.n, stats.n_plus, stats.n_left, stats.n_left_plus) == (9, 5, 3, 2)

    def test_remove_negative_right(self):
        stats = SplitStats(n=10, n_plus=6, n_left=4, n_left_plus=3)
        stats.remove(positive=False, left=False)
        assert (stats.n, stats.n_plus, stats.n_left, stats.n_left_plus) == (9, 6, 4, 3)

    def test_cannot_remove_from_empty_quadrant(self):
        stats = SplitStats(n=4, n_plus=2, n_left=2, n_left_plus=2)
        assert not stats.can_remove(positive=False, left=True)
        with pytest.raises(ValueError):
            stats.remove(positive=False, left=True)

    def test_after_removal_does_not_mutate(self):
        stats = SplitStats(n=10, n_plus=6, n_left=4, n_left_plus=3)
        updated = stats.after_removal(positive=True, left=False)
        assert stats.n == 10
        assert updated.n == 9
        assert updated.n_right_plus == stats.n_right_plus - 1

    @given(consistent_stats())
    def test_removal_keeps_consistency(self, stats):
        for positive in (True, False):
            for left in (True, False):
                if stats.can_remove(positive, left):
                    stats.after_removal(positive, left).validate()

    def test_from_counts(self):
        counts = SplitCounts(n=9, n_plus=4, n_left=5, n_left_plus=2)
        stats = SplitStats.from_counts(counts)
        assert (stats.n, stats.n_plus, stats.n_left, stats.n_left_plus) == (9, 4, 5, 2)


class TestNumericSplit:
    def test_goes_left_value(self):
        split = NumericSplit(feature=0, cut=3)
        assert split.goes_left_value(2)
        assert not split.goes_left_value(3)

    def test_goes_left_column(self):
        split = NumericSplit(feature=0, cut=2)
        codes = np.asarray([0, 1, 2, 3], dtype=np.uint8)
        assert split.goes_left_column(codes).tolist() == [True, True, False, False]

    def test_count_matches_manual(self):
        split = NumericSplit(feature=0, cut=2)
        codes = np.asarray([0, 1, 2, 3, 1], dtype=np.uint8)
        labels = np.asarray([1, 0, 1, 1, 1], dtype=np.uint8)
        stats = split.count(codes, labels)
        assert (stats.n, stats.n_plus, stats.n_left, stats.n_left_plus) == (5, 4, 3, 2)

    def test_describe_names_the_feature(self):
        split = NumericSplit(feature=0, cut=7)
        schema = FeatureSchema("age", FeatureKind.NUMERIC, 20)
        assert "age" in split.describe(schema)


class TestCategoricalSplit:
    def test_mask_membership(self):
        split = CategoricalSplit(feature=0, subset_mask=0b0101, cardinality=4)
        assert split.goes_left_value(0)
        assert not split.goes_left_value(1)
        assert split.goes_left_value(2)

    def test_rejects_empty_subset(self):
        with pytest.raises(ValueError):
            CategoricalSplit(feature=0, subset_mask=0, cardinality=4)

    def test_rejects_full_subset(self):
        with pytest.raises(ValueError):
            CategoricalSplit(feature=0, subset_mask=0b1111, cardinality=4)

    def test_goes_left_column(self):
        split = CategoricalSplit(feature=0, subset_mask=0b0110, cardinality=4)
        codes = np.asarray([0, 1, 2, 3], dtype=np.uint8)
        assert split.goes_left_column(codes).tolist() == [False, True, True, False]

    def test_wide_domain_mask(self):
        # Python ints support masks beyond 64 bits.
        cardinality = 70
        split = CategoricalSplit(feature=0, subset_mask=1 << 65, cardinality=cardinality)
        assert split.goes_left_value(65)
        assert not split.goes_left_value(0)

    def test_describe_lists_members(self):
        split = CategoricalSplit(feature=0, subset_mask=0b101, cardinality=3)
        schema = FeatureSchema("colour", FeatureKind.CATEGORICAL, 3)
        described = split.describe(schema)
        assert "colour" in described
        assert "0" in described and "2" in described

    def test_membership_table_is_cached_per_instance(self):
        # The table lives on the split object, not in a process-global
        # cache: two splits with identical (mask, cardinality) own separate
        # arrays, so models can never alias rows across each other.
        split = CategoricalSplit(feature=0, subset_mask=0b0110, cardinality=4)
        twin = CategoricalSplit(feature=0, subset_mask=0b0110, cardinality=4)
        assert split.membership_table() is split.membership_table()
        assert split.membership_table() is not twin.membership_table()
        assert np.array_equal(split.membership_table(), twin.membership_table())

    def test_membership_table_is_read_only(self):
        split = CategoricalSplit(feature=0, subset_mask=0b0110, cardinality=4)
        with pytest.raises(ValueError):
            split.membership_table()[0] = True

    def test_membership_cache_survives_pickling(self):
        import copy
        import pickle

        split = CategoricalSplit(feature=0, subset_mask=0b0110, cardinality=4)
        split.membership_table()
        for clone in (pickle.loads(pickle.dumps(split)), copy.deepcopy(split)):
            assert clone == split
            assert np.array_equal(clone.membership_table(), split.membership_table())


class TestCountSplit:
    def test_count_split_on_dataset(self):
        schema = (FeatureSchema("f", FeatureKind.NUMERIC, 4),)
        dataset = Dataset(
            schema,
            [np.asarray([0, 1, 2, 3, 2])],
            np.asarray([1, 1, 0, 0, 1]),
        )
        rows = np.asarray([0, 1, 2, 4])
        stats = count_split(dataset, rows, NumericSplit(feature=0, cut=2))
        assert (stats.n, stats.n_plus, stats.n_left, stats.n_left_plus) == (4, 3, 2, 2)


class TestSplitStatsCaches:
    """The gain/quadrant caches behind maintenance re-scoring."""

    def test_gini_gain_is_cached_between_mutations(self):
        stats = SplitStats(n=20, n_plus=8, n_left=12, n_left_plus=6)
        first = stats.gini_gain()
        assert stats._gain_cache == first
        assert stats.gini_gain() == first

    def test_quadrants_return_cached_tuple(self):
        stats = SplitStats(n=20, n_plus=8, n_left=12, n_left_plus=6)
        first = stats.quadrants()
        assert stats.quadrants() is first

    def test_remove_invalidates_both_caches(self):
        stats = SplitStats(n=20, n_plus=8, n_left=12, n_left_plus=6)
        stale_gain = stats.gini_gain()
        stale_quadrants = stats.quadrants()
        stats.remove(positive=True, left=True)
        fresh = SplitStats(n=19, n_plus=7, n_left=11, n_left_plus=5)
        assert stats.quadrants() == fresh.quadrants()
        assert stats.quadrants() != stale_quadrants
        assert stats.gini_gain() == fresh.gini_gain()
        assert stats.gini_gain() != stale_gain

    def test_direct_assignment_invalidates_automatically(self):
        stats = SplitStats(n=20, n_plus=8, n_left=12, n_left_plus=6)
        stats.gini_gain()
        stats.quadrants()
        stats.n -= 1
        stats.n_left -= 1
        fresh = SplitStats(n=19, n_plus=8, n_left=11, n_left_plus=6)
        assert stats.gini_gain() == fresh.gini_gain()
        assert stats.quadrants() == fresh.quadrants()
        # The explicit hook remains available for callers that want it.
        stats.invalidate_caches()
        assert stats.gini_gain() == fresh.gini_gain()

    def test_after_removal_leaves_source_cache_intact(self):
        stats = SplitStats(n=20, n_plus=8, n_left=12, n_left_plus=6)
        gain = stats.gini_gain()
        updated = stats.after_removal(positive=False, left=False)
        assert stats.gini_gain() == gain
        assert updated.gini_gain() != gain

    def test_old_pickles_without_cache_attributes_still_work(self):
        # Pre-__slots__ pickles carry plain __dict__ state without the
        # cache attributes; __setstate__ defaults the caches and applies
        # whatever counts the state carries.
        stats = SplitStats(n=10, n_plus=5, n_left=5, n_left_plus=3)
        state = {"n": 10, "n_plus": 5, "n_left": 5, "n_left_plus": 3}
        restored = SplitStats.__new__(SplitStats)
        restored.__setstate__(state)
        assert restored.gini_gain() == stats.gini_gain()
        assert restored.quadrants() == stats.quadrants()

    def test_pickle_round_trip_preserves_counts(self):
        import pickle

        stats = SplitStats(n=10, n_plus=5, n_left=5, n_left_plus=3)
        stats.gini_gain()  # populate the cache; it is not part of equality
        restored = pickle.loads(pickle.dumps(stats))
        assert restored == stats
        assert restored.gini_gain() == stats.gini_gain()
