"""Tests for the HedgeCut tree builder (Algorithm 3)."""

import numpy as np
import pytest

from repro.core.nodes import Leaf, MaintenanceNode, SplitNode, census, iter_nodes
from repro.core.params import HedgeCutParams
from repro.core.splits import CategoricalSplit, NumericSplit
from repro.core.tree import TreeBuilder, _random_split
from repro.dataprep.dataset import Dataset, FeatureKind, FeatureSchema

from tests.conftest import make_random_dataset


def build_tree(dataset, **param_overrides):
    params = HedgeCutParams(n_trees=1, seed=0, **param_overrides)
    rng = np.random.default_rng(7)
    builder = TreeBuilder(dataset, params, rng)
    return builder.build(), builder


class TestStopConditions:
    def test_label_constant_data_yields_leaf(self):
        schema = (FeatureSchema("f", FeatureKind.NUMERIC, 5),)
        dataset = Dataset(schema, [np.arange(5) % 5], np.ones(5, dtype=np.uint8))
        tree, _ = build_tree(dataset)
        assert isinstance(tree.root, Leaf)
        assert tree.root.n == 5
        assert tree.root.n_plus == 5

    def test_tiny_data_yields_leaf(self):
        schema = (FeatureSchema("f", FeatureKind.NUMERIC, 5),)
        dataset = Dataset(schema, [np.asarray([0, 4])], np.asarray([0, 1]))
        tree, _ = build_tree(dataset, min_leaf_size=2)
        assert isinstance(tree.root, Leaf)

    def test_constant_features_yield_leaf(self):
        schema = (
            FeatureSchema("f", FeatureKind.NUMERIC, 5),
            FeatureSchema("g", FeatureKind.CATEGORICAL, 3),
        )
        dataset = Dataset(
            schema,
            [np.full(10, 2), np.full(10, 1)],
            np.asarray([0, 1] * 5),
        )
        tree, _ = build_tree(dataset)
        assert isinstance(tree.root, Leaf)
        assert tree.root.n == 10
        assert tree.root.n_plus == 5


class TestTreeStructure:
    def test_grows_splits_on_separable_data(self):
        dataset = make_random_dataset(n_rows=300, seed=1)
        tree, _ = build_tree(dataset)
        assert not isinstance(tree.root, Leaf)
        counts = census(tree.root)
        assert counts.n_leaves >= 2
        assert counts.n_internal >= 1

    def test_leaf_counts_partition_the_training_data(self):
        """Summed leaf statistics reproduce the training set (per variant path)."""
        dataset = make_random_dataset(n_rows=200, seed=2)
        tree, _ = build_tree(dataset, robustness_mode="off")
        total = 0
        total_plus = 0
        for node in iter_nodes(tree.root):
            if isinstance(node, Leaf):
                total += node.n
                total_plus += node.n_plus
        # Without maintenance nodes every record lands in exactly one leaf.
        assert total == dataset.n_rows
        assert total_plus == dataset.n_positive

    def test_split_stats_match_children(self):
        dataset = make_random_dataset(n_rows=250, seed=3)
        tree, _ = build_tree(dataset)
        for node in iter_nodes(tree.root):
            if isinstance(node, SplitNode):
                assert node.stats.splits_data

    def test_counters_are_consistent(self):
        dataset = make_random_dataset(n_rows=250, seed=4)
        tree, builder = build_tree(dataset)
        counts = census(tree.root)
        assert builder.counters.leaves == counts.n_leaves
        assert builder.counters.maintenance_nodes == counts.n_maintenance_nodes
        assert builder.counters.robust_splits == counts.n_robust_splits
        assert builder.counters.max_depth >= 1


class TestRobustnessModes:
    def test_off_mode_never_creates_maintenance_nodes(self):
        dataset = make_random_dataset(n_rows=300, seed=5)
        tree, _ = build_tree(dataset, robustness_mode="off")
        assert census(tree.root).n_maintenance_nodes == 0

    def test_greedy_mode_creates_maintenance_nodes_on_noisy_data(self):
        dataset = make_random_dataset(n_rows=300, seed=5)
        tree, _ = build_tree(dataset, robustness_mode="greedy", epsilon=0.05)
        assert census(tree.root).n_maintenance_nodes > 0

    def test_verified_mode_builds_a_valid_tree(self):
        dataset = make_random_dataset(n_rows=150, seed=6)
        tree, _ = build_tree(dataset, robustness_mode="verified")
        assert census(tree.root).n_nodes >= 1

    def test_maintenance_depth_cap_zero_matches_off_structure(self):
        dataset = make_random_dataset(n_rows=200, seed=7)
        tree, _ = build_tree(dataset, max_maintenance_depth=0)
        assert census(tree.root).n_maintenance_nodes == 0

    def test_maintenance_nesting_respects_cap(self):
        dataset = make_random_dataset(n_rows=300, seed=8)
        tree, _ = build_tree(dataset, max_maintenance_depth=1, epsilon=0.05)

        def max_nesting(node, depth):
            if isinstance(node, Leaf):
                return depth
            if isinstance(node, SplitNode):
                return max(max_nesting(node.left, depth), max_nesting(node.right, depth))
            nested = depth + 1
            return max(
                max(
                    max_nesting(variant.left, nested),
                    max_nesting(variant.right, nested),
                )
                for variant in node.variants
            )

        assert max_nesting(tree.root, 0) <= 1

    def test_larger_epsilon_grows_more_variants(self):
        # Single trees are noisy; compare the average structure over a few
        # random streams (the Figure 5(d)/6(a) trend).
        dataset = make_random_dataset(n_rows=300, seed=9)

        def mean_nodes(epsilon):
            # Uncapped maintenance (paper-literal) so the variant growth is
            # not masked by the depth cap's plain-split fallback.
            params = HedgeCutParams(
                n_trees=1, seed=0, epsilon=epsilon, max_maintenance_depth=None
            )
            totals = []
            for seed in range(6):
                builder = TreeBuilder(dataset, params, np.random.default_rng(seed))
                totals.append(census(builder.build().root).n_nodes)
            return float(np.mean(totals))

        assert mean_nodes(0.05) >= mean_nodes(0.001)


class TestMaintenanceNodes:
    def test_variants_store_distinct_splits(self):
        dataset = make_random_dataset(n_rows=300, seed=10)
        tree, _ = build_tree(dataset, epsilon=0.05)
        for node in iter_nodes(tree.root):
            if isinstance(node, MaintenanceNode):
                assert len(node.variants) >= 2
                # The active variant is the argmax of the gains.
                gains = [variant.gain for variant in node.variants]
                assert node.active.gain == pytest.approx(max(gains))

    def test_prediction_traverses_active_variant(self):
        dataset = make_random_dataset(n_rows=300, seed=11)
        tree, _ = build_tree(dataset, epsilon=0.05)
        for row in range(0, dataset.n_rows, 37):
            record = dataset.record(row)
            assert tree.predict_value(record.values) in (0, 1)


class TestRandomSplitDrawing:
    class _Facade:
        def __init__(self, schema):
            self.schema = schema

    def test_numeric_cut_within_range(self):
        facade = self._Facade((FeatureSchema("f", FeatureKind.NUMERIC, 20),))
        rng = np.random.default_rng(0)
        for _ in range(50):
            split = _random_split(0, facade, rng)
            assert isinstance(split, NumericSplit)
            assert 1 <= split.cut <= 19

    def test_categorical_subset_proper(self):
        facade = self._Facade((FeatureSchema("c", FeatureKind.CATEGORICAL, 6),))
        rng = np.random.default_rng(0)
        for _ in range(50):
            split = _random_split(0, facade, rng)
            assert isinstance(split, CategoricalSplit)
            assert 0 < split.subset_mask < (1 << 6) - 1

    def test_wide_categorical_domain(self):
        facade = self._Facade((FeatureSchema("c", FeatureKind.CATEGORICAL, 70),))
        rng = np.random.default_rng(0)
        split = _random_split(0, facade, rng)
        assert isinstance(split, CategoricalSplit)
        assert 0 < split.subset_mask < (1 << 70) - 1

    def test_single_valued_feature_unsplittable(self):
        facade = self._Facade((FeatureSchema("c", FeatureKind.CATEGORICAL, 1),))
        rng = np.random.default_rng(0)
        assert _random_split(0, facade, rng) is None
