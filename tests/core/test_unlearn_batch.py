"""Property tests: the batch-unlearning kernel vs the scalar loop.

The vectorised kernel (:mod:`repro.core.unlearn_batch`) must be
*verdict-identical* to unlearning the same records one by one: same
aggregated :class:`UnlearningReport`, same variant switches in the same
trees, bit-identical ``predict_proba`` afterwards -- through interleaved
unlearn/predict campaigns. The fast cases run on the shared fixtures; the
full registry matrix is ``slow``-marked (``make test-all``).
"""

import copy

import numpy as np
import pytest

from repro.core.ensemble import HedgeCutClassifier
from repro.core.exceptions import DeletionBudgetExhausted, UnlearningError
from repro.core.nodes import MaintenanceNode, iter_nodes
from repro.core.unlearning import UnlearningReport
from repro.datasets.registry import available_datasets, load_dataset
from repro.evaluation.splits import train_test_split


def _active_variants(model):
    """(tree index, active_index) of every maintenance node, in DFS order."""
    actives = []
    for index, tree in enumerate(model.trees):
        for node in iter_nodes(tree.root):
            if isinstance(node, MaintenanceNode):
                actives.append((index, node.active_index))
    return actives


def _variant_gains(model):
    gains = []
    for tree in model.trees:
        for node in iter_nodes(tree.root):
            if isinstance(node, MaintenanceNode):
                gains.extend(variant.gain for variant in node.variants)
    return gains


def assert_batch_equivalent_campaign(model, train, test, batches, overrun=False):
    """Run the same deletion campaign scalar vs batched; compare verdicts.

    ``batches`` is a list of row-index lists; predictions are interleaved
    between batches on both sides and compared bit-for-bit.
    """
    scalar = copy.deepcopy(model)
    batched = copy.deepcopy(model)
    # Build both packs up front so the batched side takes the kernel path.
    assert np.array_equal(
        scalar.predict_proba_batch(test), batched.predict_proba_batch(test)
    )
    total = UnlearningReport()
    for rows in batches:
        records = [train.record(row) for row in rows]
        scalar_report = UnlearningReport()
        for record in records:
            scalar_report.merge(
                scalar.unlearn(record, allow_budget_overrun=True)
                if overrun
                else scalar.unlearn(record)
            )
        batch_report = batched.unlearn_batch(records, allow_budget_overrun=overrun)
        assert batch_report == scalar_report
        total.merge(batch_report)
        assert np.array_equal(
            scalar.predict_proba_batch(test), batched.predict_proba_batch(test)
        )
        assert _active_variants(scalar) == _active_variants(batched)
        assert _variant_gains(scalar) == _variant_gains(batched)
    assert scalar.n_unlearned == batched.n_unlearned
    return total


class TestKernelEquivalence:
    def test_single_batch_matches_scalar_loop(self, fitted_model, income_split):
        train, test = income_split
        assert_batch_equivalent_campaign(
            fitted_model, train, test, [list(range(4))]
        )

    def test_interleaved_campaign(self, fitted_model, income_split):
        train, test = income_split
        assert_batch_equivalent_campaign(
            fitted_model,
            train,
            test,
            [[0], list(range(1, 9)), list(range(9, 41)), [41, 42]],
            overrun=True,
        )

    def test_campaign_with_variant_switches(self):
        # The heart sample at this epsilon produces several switches over
        # a 300-record campaign (checked in-test), exercising the kernel's
        # prefix-replay re-scoring rather than only the no-switch path.
        data = load_dataset("heart", n_rows=1200, seed=3)
        train, test = train_test_split(data, test_fraction=0.2, seed=3)
        model = HedgeCutClassifier(n_trees=4, epsilon=0.05, seed=5).fit(train)
        total = assert_batch_equivalent_campaign(
            model, train, test, [list(range(150)), list(range(150, 300))],
            overrun=True,
        )
        assert total.variant_switches > 0, "campaign produced no variant switch"

    def test_scalar_fallback_matches_kernel(self, fitted_model, income_split):
        train, test = income_split
        records = [train.record(row) for row in range(6)]
        packed = copy.deepcopy(fitted_model)
        unpacked = copy.deepcopy(fitted_model)
        _ = packed.predict_proba_batch(test)  # pack built -> kernel path
        report_packed = packed.unlearn_batch(records, allow_budget_overrun=True)
        # no pack -> scalar loop
        report_unpacked = unpacked.unlearn_batch(records, allow_budget_overrun=True)
        assert report_packed == report_unpacked
        assert np.array_equal(
            packed.predict_proba_batch(test), unpacked.predict_proba_batch(test)
        )

    def test_kernel_path_after_scalar_interleaving(self, fitted_model, income_split):
        # Scalar unlearns/learn_one mark the pack's count mirrors stale;
        # the next batch must refresh them instead of applying deltas to
        # outdated counts.
        train, test = income_split
        reference = copy.deepcopy(fitted_model)
        subject = copy.deepcopy(fitted_model)
        _ = subject.predict_proba_batch(test)
        subject.unlearn_batch([train.record(0), train.record(1)])
        # scalar paths: both mark the pack's count mirrors stale
        subject.unlearn(train.record(2), allow_budget_overrun=True)
        subject.learn_one(train.record(3))
        subject.unlearn_batch(
            [train.record(4), train.record(5)], allow_budget_overrun=True
        )
        for row in (0, 1, 2, 4, 5):
            reference.unlearn(train.record(row), allow_budget_overrun=True)
        reference.learn_one(train.record(3))
        assert np.array_equal(
            subject.predict_proba_batch(test), reference.predict_proba_batch(test)
        )


class TestBatchValidation:
    def test_budget_prevalidated_before_any_tree(self, fitted_model, income_split):
        train, test = income_split
        _ = fitted_model.predict_proba_batch(test)
        remaining = fitted_model.remaining_deletion_budget
        before = fitted_model.predict_proba_batch(test).copy()
        records = [train.record(row) for row in range(remaining + 1)]
        with pytest.raises(DeletionBudgetExhausted):
            fitted_model.unlearn_batch(records)
        # Nothing was applied: counters and predictions are untouched.
        assert fitted_model.n_unlearned == 0
        assert np.array_equal(fitted_model.predict_proba_batch(test), before)

    def test_budget_prevalidated_on_scalar_fallback(self, fitted_model, income_split):
        train, _ = income_split
        remaining = fitted_model.remaining_deletion_budget
        records = [train.record(row) for row in range(remaining + 1)]
        with pytest.raises(DeletionBudgetExhausted):
            fitted_model.unlearn_batch(records)  # no pack -> scalar path
        assert fitted_model.n_unlearned == 0

    def test_kernel_batch_is_atomic_on_inconsistent_record(
        self, fitted_model, income_split
    ):
        train, test = income_split
        _ = fitted_model.predict_proba_batch(test)
        doomed = train.record(0)
        fitted_model.unlearn(doomed, allow_budget_overrun=True)
        before = fitted_model.predict_proba_batch(test).copy()
        n_before = fitted_model.n_unlearned
        # The doubly-deleted record poisons the whole batch: the kernel
        # must raise with zero mutation, including the healthy members.
        with pytest.raises(UnlearningError):
            fitted_model.unlearn_batch(
                [train.record(1), doomed, doomed], allow_budget_overrun=True
            )
        assert fitted_model.n_unlearned == n_before
        assert np.array_equal(fitted_model.predict_proba_batch(test), before)

    def test_empty_batch_is_a_noop(self, fitted_model):
        report = fitted_model.unlearn_batch([])
        assert report == UnlearningReport()
        assert fitted_model.n_unlearned == 0

    def test_shape_mismatch_rejected_up_front(self, fitted_model, income_split):
        from repro.dataprep.dataset import Record

        train, _ = income_split
        bad = Record(values=(0, 1), label=0)
        with pytest.raises(UnlearningError):
            fitted_model.unlearn_batch([train.record(0), bad])
        assert fitted_model.n_unlearned == 0


@pytest.mark.slow
class TestFullRegistryMatrix:
    """Scalar-vs-batch equivalence over every registry dataset."""

    @pytest.mark.parametrize("name", sorted(available_datasets()))
    def test_batch_equivalence_through_campaign(self, name):
        data = load_dataset(name, n_rows=1200, seed=3)
        train, test = train_test_split(data, test_fraction=0.25, seed=3)
        model = HedgeCutClassifier(n_trees=4, epsilon=0.02, seed=5).fit(train)
        assert_batch_equivalent_campaign(
            model,
            train,
            test,
            [[0], list(range(1, 17)), list(range(17, 120)), [120]],
            overrun=True,
        )
