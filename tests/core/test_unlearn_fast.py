"""Property tests: the scalar fast path vs the object reference path.

``unlearn_one_packed`` (:mod:`repro.core.unlearn_fast`) must be
*verdict-identical* to the object-graph walk of
:mod:`repro.core.unlearning`: same :class:`UnlearningReport` field by
field, same variant switches in the same trees, bit-identical
``predict_proba`` afterwards, and the same error message on rejection --
through interleaved unlearn/predict campaigns, across snapshot
round-trips, and after the small-batch loop's whole-batch rollback.

The second half covers the DaRE-style ``topd`` knob: ``topd=0`` trains
bit-identical models to the pre-knob code, deletions never touch the
frozen random layers, and both the snapshot codec and WAL recovery
preserve the random flags.
"""

import copy

import numpy as np
import pytest

from repro.core.ensemble import HedgeCutClassifier
from repro.core.exceptions import UnlearningError
from repro.core.nodes import MaintenanceNode, SplitNode, iter_nodes
from repro.core.unlearning import UnlearningReport
from repro.datasets.registry import load_dataset
from repro.evaluation.splits import train_test_split


def _active_variants(model):
    """(tree index, active_index) of every maintenance node, in DFS order."""
    actives = []
    for index, tree in enumerate(model.trees):
        for node in iter_nodes(tree.root):
            if isinstance(node, MaintenanceNode):
                actives.append((index, node.active_index))
    return actives


def _variant_gains(model):
    gains = []
    for tree in model.trees:
        for node in iter_nodes(tree.root):
            if isinstance(node, MaintenanceNode):
                gains.extend(variant.gain for variant in node.variants)
    return gains


def _split_counts(model):
    """(n, n_plus, n_left, n_left_plus) of every split node, in DFS order."""
    counts = []
    for tree in model.trees:
        for node in iter_nodes(tree.root):
            if isinstance(node, SplitNode):
                stats = node.stats
                counts.append(
                    (node.random, stats.n, stats.n_plus, stats.n_left, stats.n_left_plus)
                )
    return counts


def _drive_to_rejection(model, record, max_iters=64):
    """Accepted deletions of ``record`` before the fast path rejects it.

    Deleting the same record repeatedly drains its leaf and split
    quadrants until ``can_remove`` fails, which makes rejection
    deterministic without hunting for a naturally rejectable record.
    Returns ``None`` if no rejection occurs within ``max_iters``.
    """
    probe = copy.deepcopy(model)
    _ = probe.packed.unlearn_pack()
    for accepted in range(max_iters):
        try:
            probe.unlearn(record, allow_budget_overrun=True, path="fast")
        except UnlearningError:
            return accepted
    return None


def assert_fast_equivalent_campaign(model, train, test, rows, overrun=True):
    """Delete the same rows via the fast path and the object path.

    Both sides must agree on every report, every rejection message,
    every maintenance-node state, and every interleaved prediction.
    Returns the merged report for campaign-level assertions.
    """
    fast = copy.deepcopy(model)
    obj = copy.deepcopy(model)
    _ = fast.packed.unlearn_pack()  # pack resident -> "auto" takes the fast path
    total = UnlearningReport()
    for row in rows:
        record = train.record(row)
        obj_error = fast_error = None
        try:
            obj_report = obj.unlearn(record, allow_budget_overrun=overrun, path="object")
        except UnlearningError as exc:
            obj_error = str(exc)
        try:
            fast_report = fast.unlearn(record, allow_budget_overrun=overrun, path="fast")
        except UnlearningError as exc:
            fast_error = str(exc)
        assert obj_error == fast_error
        if obj_error is None:
            assert fast_report == obj_report
            total.merge(fast_report)
        assert _active_variants(fast) == _active_variants(obj)
        assert _variant_gains(fast) == _variant_gains(obj)
        assert np.array_equal(
            fast.predict_proba_batch(test), obj.predict_proba_batch(test)
        )
    assert _split_counts(fast) == _split_counts(obj)
    assert fast.n_unlearned == obj.n_unlearned
    return total


class TestFastPathEquivalence:
    def test_income_campaign(self, fitted_model, income_split):
        train, test = income_split
        assert_fast_equivalent_campaign(fitted_model, train, test, range(40))

    def test_auto_dispatch_uses_fast_path(self, fitted_model, income_split):
        train, test = income_split
        auto = copy.deepcopy(fitted_model)
        obj = copy.deepcopy(fitted_model)
        _ = auto.packed.unlearn_pack()
        for row in range(6):
            record = train.record(row)
            assert auto.unlearn(record, allow_budget_overrun=True) == obj.unlearn(
                record, allow_budget_overrun=True, path="object"
            )
        assert np.array_equal(
            auto.predict_proba_batch(test), obj.predict_proba_batch(test)
        )

    def test_campaign_with_variant_switches(self):
        # Same forced-switch campaign as the batch-kernel suite: heart at
        # a loose epsilon produces several variant switches over 300
        # deletions, exercising re-scoring and repack, not only the
        # no-switch path.
        data = load_dataset("heart", n_rows=1200, seed=3)
        train, test = train_test_split(data, test_fraction=0.2, seed=3)
        model = HedgeCutClassifier(n_trees=4, epsilon=0.05, seed=5).fit(train)
        total = assert_fast_equivalent_campaign(model, train, test, range(300))
        assert total.variant_switches > 0, "campaign produced no variant switch"

    def test_rejection_is_atomic(self, fitted_model, income_split):
        # When a deletion is rejected, the fast path must leave the model
        # (object counts AND packed mirrors) exactly as before.
        train, test = income_split
        model = fitted_model
        _ = model.packed.unlearn_pack()
        record = train.record(0)
        accepted = _drive_to_rejection(model, record)
        assert accepted is not None, "repeated deletion never hit a rejection"
        for _ in range(accepted):
            model.unlearn(record, allow_budget_overrun=True, path="fast")
        before_counts = _split_counts(model)
        before_proba = model.predict_proba_batch(test)
        with pytest.raises(UnlearningError):
            model.unlearn(record, allow_budget_overrun=True, path="fast")
        assert _split_counts(model) == before_counts
        assert np.array_equal(model.predict_proba_batch(test), before_proba)
        # The pack was not left half-mutated either: the next accepted
        # deletion still matches the object path.
        assert_fast_equivalent_campaign(model, train, test, range(4))

    def test_fast_path_after_snapshot_restore(self, fitted_model, income_split, tmp_path):
        from repro.persistence.snapshot import load_snapshot, save_snapshot

        train, test = income_split
        save_snapshot(fitted_model, tmp_path / "m.npz")
        restored, _ = load_snapshot(tmp_path / "m.npz")
        assert_fast_equivalent_campaign(restored, train, test, range(20))

    def test_small_batch_dispatch_matches_object_loop(self, fitted_model, income_split):
        # Batches below ``small_batch_threshold`` route through the
        # scalar small-batch loop; the result must equal the one-by-one
        # object walk, report and predictions alike.
        train, test = income_split
        batched = copy.deepcopy(fitted_model)
        obj = copy.deepcopy(fitted_model)
        _ = batched.packed.unlearn_pack()
        records = [train.record(row) for row in range(8)]
        assert len(records) < batched.small_batch_threshold
        batch_report = batched.unlearn_batch(records, allow_budget_overrun=True)
        loop_report = UnlearningReport()
        for record in records:
            loop_report.merge(
                obj.unlearn(record, allow_budget_overrun=True, path="object")
            )
        assert batch_report == loop_report
        assert _active_variants(batched) == _active_variants(obj)
        assert np.array_equal(
            batched.predict_proba_batch(test), obj.predict_proba_batch(test)
        )

    def test_small_batch_rollback_is_whole_batch_atomic(self, fitted_model, income_split):
        # A batch containing one unremovable record must leave the model
        # untouched, even when earlier records in the batch were applied.
        train, test = income_split
        model = fitted_model
        _ = model.packed.unlearn_pack()
        record = train.record(0)
        accepted = _drive_to_rejection(model, record)
        assert accepted is not None, "repeated deletion never hit a rejection"
        # One batch whose final repetition must be rejected after the
        # earlier ones were already applied in this very batch.
        records = [record] * (accepted + 1)
        assert len(records) < model.small_batch_threshold
        before_counts = _split_counts(model)
        before_actives = _active_variants(model)
        before_proba = model.predict_proba_batch(test)
        with pytest.raises(UnlearningError):
            model.unlearn_batch(records, allow_budget_overrun=True)
        assert _split_counts(model) == before_counts
        assert _active_variants(model) == before_actives
        assert np.array_equal(model.predict_proba_batch(test), before_proba)
        # The model remains fully usable on the fast path afterwards.
        assert_fast_equivalent_campaign(model, train, test, range(4))

    def test_invalid_path_rejected(self, fitted_model, income_split):
        train, _ = income_split
        with pytest.raises(ValueError, match="path"):
            fitted_model.unlearn(train.record(0), path="warp")


class TestTopdKnob:
    def test_negative_topd_rejected(self):
        with pytest.raises(ValueError, match="topd"):
            HedgeCutClassifier(n_trees=2, topd=-1)

    @pytest.mark.parametrize("trainer", ["recursive", "frontier"])
    def test_topd_zero_is_bit_identical(self, income_split, trainer):
        # topd=0 must reproduce the pre-knob trees exactly: same rng
        # consumption, same splits, same predictions.
        train, test = income_split
        base = HedgeCutClassifier(n_trees=3, epsilon=0.01, trainer=trainer, seed=9).fit(
            train
        )
        knob = HedgeCutClassifier(
            n_trees=3, epsilon=0.01, trainer=trainer, topd=0, seed=9
        ).fit(train)
        assert _split_counts(base) == _split_counts(knob)
        assert np.array_equal(
            base.predict_proba_batch(test), knob.predict_proba_batch(test)
        )
        assert sum(t.counters.random_splits for t in knob.trees) == 0

    @pytest.mark.parametrize("trainer", ["recursive", "frontier"])
    def test_random_layers_confined_to_topd(self, income_split, trainer):
        train, _ = income_split
        topd = 2
        model = HedgeCutClassifier(
            n_trees=3, epsilon=0.01, trainer=trainer, topd=topd, seed=9
        ).fit(train)
        n_random = 0
        for tree in model.trees:
            stack = [(tree.root, 0)]
            while stack:
                node, depth = stack.pop()
                if isinstance(node, MaintenanceNode):
                    node = node.active
                if isinstance(node, SplitNode):
                    if node.random:
                        assert depth < topd, "random split below the topd boundary"
                        n_random += 1
                    stack.append((node.left, depth + 1))
                    stack.append((node.right, depth + 1))
        assert n_random > 0, "topd=2 trained no random splits"
        assert n_random == sum(t.counters.random_splits for t in model.trees)

    @pytest.mark.parametrize("trainer", ["recursive", "frontier"])
    def test_deletions_never_touch_random_layers(self, income_split, trainer):
        # Random-node stats are frozen at training time: neither the fast
        # nor the object path may decrement them, and the report counts
        # the skipped traversals separately.
        train, test = income_split
        model = HedgeCutClassifier(
            n_trees=3, epsilon=0.01, trainer=trainer, topd=2, seed=9
        ).fit(train)
        frozen_before = [c for c in _split_counts(model) if c[0]]
        total = assert_fast_equivalent_campaign(model, train, test, range(30))
        assert total.random_nodes_visited > 0
        # Re-run the campaign on a fresh copy to inspect the final state.
        survivor = copy.deepcopy(model)
        _ = survivor.packed.unlearn_pack()
        for row in range(30):
            try:
                survivor.unlearn(train.record(row), allow_budget_overrun=True)
            except UnlearningError:
                pass
        frozen_after = [c for c in _split_counts(survivor) if c[0]]
        assert frozen_after == frozen_before

    def test_learn_one_never_touches_random_layers(self, income_split):
        train, _ = income_split
        model = HedgeCutClassifier(n_trees=3, epsilon=0.01, topd=2, seed=9).fit(train)
        frozen_before = [c for c in _split_counts(model) if c[0]]
        for row in range(10):
            model.learn_one(train.record(row))
        frozen_after = [c for c in _split_counts(model) if c[0]]
        assert frozen_after == frozen_before

    def test_snapshot_round_trip_preserves_random_flags(self, income_split, tmp_path):
        from repro.persistence.snapshot import load_snapshot, save_snapshot

        train, test = income_split
        model = HedgeCutClassifier(n_trees=3, epsilon=0.01, topd=2, seed=9).fit(train)
        save_snapshot(model, tmp_path / "m.npz")
        restored, _ = load_snapshot(tmp_path / "m.npz")
        assert _split_counts(restored) == _split_counts(model)
        assert np.array_equal(
            restored.predict_proba_batch(test), model.predict_proba_batch(test)
        )
        # The restored model unlearns identically on both paths.
        assert_fast_equivalent_campaign(restored, train, test, range(10))

    def test_wal_recovery_replays_to_same_state(self, income_split, tmp_path):
        # Crash-recovery replays the WAL tail through the object path on a
        # model without a pack; with topd layers present it must still
        # land on the exact state the fast path produced before the crash.
        from repro.persistence.store import ModelStore

        train, test = income_split
        model = HedgeCutClassifier(n_trees=3, epsilon=0.01, topd=2, seed=9).fit(train)
        with ModelStore(tmp_path / "store") as store:
            store.save_snapshot(model, wal_seq=0)
            _ = model.packed.unlearn_pack()
            for row in range(12):
                record = train.record(row)
                try:
                    model.unlearn(record, allow_budget_overrun=True)
                except UnlearningError:
                    continue
                store.wal.append(record, allow_budget_overrun=True)
        with ModelStore(tmp_path / "store") as store:
            recovered = store.recover()
        assert _split_counts(recovered.model) == _split_counts(model)
        assert _active_variants(recovered.model) == _active_variants(model)
        assert np.array_equal(
            recovered.model.predict_proba_batch(test), model.predict_proba_batch(test)
        )
