"""Tests for the unlearning traversal (Algorithm 4)."""

import numpy as np
import pytest

from repro.core.nodes import Leaf, MaintenanceNode, SplitNode, iter_nodes
from repro.core.exceptions import UnlearningError
from repro.core.params import HedgeCutParams
from repro.core.tree import TreeBuilder
from repro.core.unlearning import UnlearningReport, unlearn_from_tree
from repro.dataprep.dataset import Record

from tests.conftest import make_random_dataset


def fresh_tree(seed=0, **param_overrides):
    dataset = make_random_dataset(n_rows=250, seed=seed)
    params = HedgeCutParams(n_trees=1, seed=0, **param_overrides)
    tree = TreeBuilder(dataset, params, np.random.default_rng(seed)).build()
    return dataset, tree


def leaf_totals(root):
    """Total (n, n_plus) over the leaves of the *active* paths only."""
    total = 0
    total_plus = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, Leaf):
            total += node.n
            total_plus += node.n_plus
        elif isinstance(node, SplitNode):
            stack.extend((node.left, node.right))
        else:
            stack.append(node.active.left)
            stack.append(node.active.right)
    return total, total_plus


class TestLeafUpdates:
    def test_unlearning_decrements_exactly_one_active_leaf_path(self):
        dataset, tree = fresh_tree(seed=1, robustness_mode="off")
        before = leaf_totals(tree.root)
        record = dataset.record(0)
        report = unlearn_from_tree(tree.root, record)
        after = leaf_totals(tree.root)
        assert after[0] == before[0] - 1
        assert after[1] == before[1] - record.label
        assert report.leaves_updated >= 1

    def test_unlearning_updates_every_variant(self):
        dataset, tree = fresh_tree(seed=2, epsilon=0.05)
        maintenance = [
            node for node in iter_nodes(tree.root) if isinstance(node, MaintenanceNode)
        ]
        if not maintenance:
            pytest.skip("no maintenance node materialised for this seed")
        node = maintenance[0]
        before = [variant.stats.n for variant in node.variants]
        # Find a record routed through this node by direct traversal.
        record = _record_reaching(tree.root, node, dataset)
        unlearn_from_tree(tree.root, record)
        after = [variant.stats.n for variant in node.variants]
        assert all(b - a == 1 for b, a in zip(before, after))

    def test_split_stats_stay_consistent_with_children(self):
        dataset, tree = fresh_tree(seed=3)
        for row in range(0, 20):
            unlearn_from_tree(tree.root, dataset.record(row))
        for node in iter_nodes(tree.root):
            if isinstance(node, SplitNode):
                node.stats.validate()


class TestErrors:
    def test_unlearning_unknown_record_raises_eventually(self):
        # Unlearning the same record more times than its leaf holds records
        # must surface as an error instead of negative counts.
        dataset, tree = fresh_tree(seed=4, robustness_mode="off")
        record = dataset.record(0)
        with pytest.raises(UnlearningError):
            for _ in range(dataset.n_rows + 1):
                unlearn_from_tree(tree.root, record)

    def test_empty_leaf_rejects_removal(self):
        leaf = Leaf(n=0, n_plus=0)
        with pytest.raises(UnlearningError):
            unlearn_from_tree(leaf, Record(values=(0,), label=0))

    def test_label_mismatch_rejected(self):
        leaf = Leaf(n=2, n_plus=0)
        with pytest.raises(UnlearningError):
            unlearn_from_tree(leaf, Record(values=(0,), label=1))

    @pytest.mark.parametrize("overrides", [{"robustness_mode": "off"}, {"epsilon": 0.05}])
    def test_failed_unlearn_leaves_tree_unchanged(self, overrides):
        # Regression: the old one-pass traversal aborted mid-walk, leaving
        # the decrements of already-visited nodes applied. Validate-then-
        # apply must leave the tree bit-for-bit untouched on failure.
        dataset, tree = fresh_tree(seed=4, **overrides)
        record = dataset.record(0)
        while True:
            snapshot = _tree_state(tree.root)
            try:
                unlearn_from_tree(tree.root, record)
            except UnlearningError:
                break
        assert _tree_state(tree.root) == snapshot


def _tree_state(root):
    """Every mutable count (and active variant) of a tree, in DFS order."""
    state = []
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, Leaf):
            state.append(("leaf", node.n, node.n_plus))
        elif isinstance(node, SplitNode):
            stats = node.stats
            state.append(
                ("split", stats.n, stats.n_plus, stats.n_left, stats.n_left_plus)
            )
            stack.extend((node.left, node.right))
        else:
            state.append(("maintenance", node.active_index))
            for variant in node.variants:
                stats = variant.stats
                state.append(
                    ("variant", stats.n, stats.n_plus, stats.n_left, stats.n_left_plus)
                )
                stack.extend((variant.left, variant.right))
    return state


class TestReports:
    def test_report_merge_accumulates(self):
        first = UnlearningReport(1, 2, 3, 4)
        second = UnlearningReport(10, 20, 30, 40)
        first.merge(second)
        assert (
            first.leaves_updated,
            first.robust_nodes_visited,
            first.maintenance_nodes_visited,
            first.variant_switches,
        ) == (11, 22, 33, 44)

    def test_report_counts_visited_kinds(self):
        dataset, tree = fresh_tree(seed=5)
        report = unlearn_from_tree(tree.root, dataset.record(1))
        assert report.leaves_updated >= 1
        assert report.robust_nodes_visited >= 0
        assert report.variant_switches <= report.maintenance_nodes_visited


class TestVariantSwitching:
    def test_switch_changes_active_variant(self):
        dataset, tree = fresh_tree(seed=6, epsilon=0.05)
        maintenance = [
            node for node in iter_nodes(tree.root) if isinstance(node, MaintenanceNode)
        ]
        if not maintenance:
            pytest.skip("no maintenance node materialised for this seed")
        node = maintenance[0]
        # Force a switch by directly degrading the active variant's stats to
        # an uninformative split, then unlearning a record through the tree.
        active = node.active
        runner_up = node.variants[1 if node.active_index == 0 else 0]
        active.stats.n_left_plus = max(
            0, min(active.stats.n_left, int(active.stats.n_plus * active.stats.n_left / max(1, active.stats.n)))
        )
        switched = node.rescore()
        # Depending on the generated stats the re-score may or may not
        # switch; assert only the invariant that the active variant has the
        # maximal gain afterwards.
        gains = [variant.gain for variant in node.variants]
        assert node.active.gain == pytest.approx(max(gains))
        assert isinstance(switched, bool)
        assert runner_up in node.variants


def _record_reaching(root, target, dataset) -> Record:
    """Find a training record whose unlearning path visits ``target``."""
    for row in range(dataset.n_rows):
        record = dataset.record(row)
        stack = [root]
        while stack:
            node = stack.pop()
            if node is target:
                return record
            if isinstance(node, SplitNode):
                goes_left = node.split.goes_left_value(record.values[node.split.feature])
                stack.append(node.left if goes_left else node.right)
            elif isinstance(node, MaintenanceNode):
                for variant in node.variants:
                    goes_left = variant.split.goes_left_value(
                        record.values[variant.split.feature]
                    )
                    stack.append(variant.left if goes_left else variant.right)
    raise AssertionError("no record reaches the target node")
