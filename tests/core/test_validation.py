"""Tests for the model invariant checker."""

import pytest

from repro.core.nodes import Leaf, MaintenanceNode, SplitNode
from repro.core.validation import validate_model


class TestHealthyModels:
    def test_fresh_model_validates(self, fitted_model_session):
        result = validate_model(fitted_model_session)
        assert result.ok, result.format_report()
        assert result.nodes_checked > 0
        assert "OK" in result.format_report()

    def test_unlearned_model_validates(self, fitted_model, income_split):
        train, _ = income_split
        for row in range(fitted_model.deletion_budget):
            fitted_model.unlearn(train.record(row))
        result = validate_model(fitted_model)
        assert result.ok, result.format_report()


class TestCorruptionDetection:
    def _first_node(self, model, kind):
        from repro.core.nodes import iter_nodes

        for tree in model.trees:
            for node in iter_nodes(tree.root):
                if isinstance(node, kind):
                    return node
        return None

    def test_detects_negative_leaf(self, fitted_model):
        leaf = self._first_node(fitted_model, Leaf)
        leaf.n = -1
        result = validate_model(fitted_model)
        assert not result.ok
        assert any(issue.kind == "leaf-counts" for issue in result.issues)
        assert "INVALID" in result.format_report()

    def test_detects_leaf_overcount(self, fitted_model):
        leaf = self._first_node(fitted_model, Leaf)
        leaf.n_plus = leaf.n + 1
        result = validate_model(fitted_model)
        assert any(issue.kind == "leaf-counts" for issue in result.issues)

    def test_detects_split_child_mismatch(self, fitted_model):
        split = self._first_node(fitted_model, SplitNode)
        split.stats.n += 5
        split.stats.n_left += 5  # keep internal consistency, break totals
        result = validate_model(fitted_model)
        assert any(issue.kind == "split-vs-children" for issue in result.issues)

    def test_detects_stale_active_variant(self, fitted_model):
        node = self._first_node(fitted_model, MaintenanceNode)
        if node is None:
            pytest.skip("no maintenance node in this model")
        # Point the active index at the weakest variant without rescoring.
        gains = [variant.stats.gini_gain() for variant in node.variants]
        worst = min(range(len(gains)), key=lambda index: gains[index])
        best = max(range(len(gains)), key=lambda index: gains[index])
        if gains[worst] == gains[best]:
            pytest.skip("variants are tied; staleness undetectable")
        node.active_index = worst
        result = validate_model(fitted_model)
        assert any(issue.kind == "stale-active-variant" for issue in result.issues)
