"""Tests for the in-place partitioned training workspace."""

import numpy as np
import pytest

from repro.core.workspace import TreeWorkspace

from tests.conftest import make_random_dataset


@pytest.fixture()
def workspace():
    return TreeWorkspace(make_random_dataset(n_rows=40, seed=91))


class TestViews:
    def test_full_range_views_match_dataset(self):
        dataset = make_random_dataset(n_rows=30, seed=92)
        workspace = TreeWorkspace(dataset)
        for feature in range(dataset.n_features):
            assert np.array_equal(
                workspace.codes(feature, 0, 30), dataset.column(feature)
            )
        assert np.array_equal(workspace.labels(0, 30), dataset.labels)

    def test_workspace_does_not_mutate_the_dataset(self):
        dataset = make_random_dataset(n_rows=30, seed=93)
        original = dataset.column(0).copy()
        workspace = TreeWorkspace(dataset)
        mask = workspace.codes(0, 0, 30) < 4
        workspace.partition(0, 30, mask)
        assert np.array_equal(dataset.column(0), original)


class TestPartition:
    def test_partition_moves_left_records_front(self, workspace):
        mask = workspace.codes(0, 0, 40) < 4
        expected_left = int(mask.sum())
        mid = workspace.partition(0, 40, mask)
        assert mid == expected_left
        assert (workspace.codes(0, 0, mid) < 4).all()
        assert (workspace.codes(0, mid, 40) >= 4).all()

    def test_partition_preserves_row_alignment(self, workspace):
        """All columns and labels must be permuted by the same order."""
        before = [
            (
                tuple(int(workspace.codes(f, 0, 40)[row]) for f in range(3)),
                int(workspace.labels(0, 40)[row]),
            )
            for row in range(40)
        ]
        mask = workspace.codes(1, 0, 40) < 2
        workspace.partition(0, 40, mask)
        after = [
            (
                tuple(int(workspace.codes(f, 0, 40)[row]) for f in range(3)),
                int(workspace.labels(0, 40)[row]),
            )
            for row in range(40)
        ]
        assert sorted(before) == sorted(after)

    def test_partition_is_stable(self, workspace):
        """Relative order within each side is preserved."""
        column = workspace.codes(2, 0, 40).copy()
        mask = column == 1
        workspace.partition(0, 40, mask)
        after = workspace.codes(2, 0, 40)
        mid = int(mask.sum())
        assert np.array_equal(after[:mid], column[mask])
        assert np.array_equal(after[mid:], column[~mask])

    def test_subrange_partition_leaves_outside_untouched(self, workspace):
        outside_before = workspace.codes(0, 0, 10).copy()
        mask = workspace.codes(0, 10, 30) < 4
        workspace.partition(10, 30, mask)
        assert np.array_equal(workspace.codes(0, 0, 10), outside_before)

    def test_repartitioning_a_range_preserves_its_multiset(self, workspace):
        """The maintenance-node pattern: partition the same range twice."""
        original = sorted(workspace.codes(0, 5, 35).tolist())
        first_mask = workspace.codes(0, 5, 35) < 3
        workspace.partition(5, 35, first_mask)
        second_mask = workspace.codes(0, 5, 35) >= 5
        workspace.partition(5, 35, second_mask)
        assert sorted(workspace.codes(0, 5, 35).tolist()) == original

    def test_mask_length_mismatch_rejected(self, workspace):
        with pytest.raises(ValueError):
            workspace.partition(0, 40, np.ones(10, dtype=bool))
