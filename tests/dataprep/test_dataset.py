"""Tests for the column-oriented dataset container."""

import numpy as np
import pytest

from repro.dataprep.dataset import Dataset, FeatureKind, FeatureSchema, Record


def simple_dataset():
    schema = (
        FeatureSchema("n", FeatureKind.NUMERIC, 10),
        FeatureSchema("c", FeatureKind.CATEGORICAL, 3),
    )
    return Dataset(
        schema,
        [np.asarray([0, 5, 9, 3]), np.asarray([0, 1, 2, 1])],
        np.asarray([0, 1, 1, 0]),
    )


class TestSchema:
    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            FeatureSchema("x", FeatureKind.NUMERIC, 0)

    def test_kind_predicates(self):
        numeric = FeatureSchema("x", FeatureKind.NUMERIC, 5)
        categorical = FeatureSchema("y", FeatureKind.CATEGORICAL, 5)
        assert numeric.is_numeric and not numeric.is_categorical
        assert categorical.is_categorical and not categorical.is_numeric

    def test_bitmask_support_threshold(self):
        assert FeatureSchema("y", FeatureKind.CATEGORICAL, 32).supports_bitmask
        assert not FeatureSchema("y", FeatureKind.CATEGORICAL, 33).supports_bitmask
        assert not FeatureSchema("x", FeatureKind.NUMERIC, 8).supports_bitmask


class TestConstruction:
    def test_basic_properties(self):
        dataset = simple_dataset()
        assert dataset.n_rows == 4
        assert dataset.n_features == 2
        assert dataset.n_positive == 2
        assert len(dataset) == 4

    def test_rejects_schema_column_mismatch(self):
        schema = (FeatureSchema("n", FeatureKind.NUMERIC, 10),)
        with pytest.raises(ValueError):
            Dataset(schema, [np.zeros(3), np.zeros(3)], np.zeros(3))

    def test_rejects_ragged_columns(self):
        schema = (
            FeatureSchema("a", FeatureKind.NUMERIC, 10),
            FeatureSchema("b", FeatureKind.NUMERIC, 10),
        )
        with pytest.raises(ValueError):
            Dataset(schema, [np.zeros(3), np.zeros(4)], np.zeros(3))

    def test_rejects_non_binary_labels(self):
        schema = (FeatureSchema("n", FeatureKind.NUMERIC, 10),)
        with pytest.raises(ValueError):
            Dataset(schema, [np.zeros(3)], np.asarray([0, 1, 2]))

    def test_rejects_out_of_range_codes(self):
        schema = (FeatureSchema("n", FeatureKind.NUMERIC, 4),)
        with pytest.raises(ValueError):
            Dataset(schema, [np.asarray([0, 4])], np.asarray([0, 1]))

    def test_columns_are_read_only(self):
        dataset = simple_dataset()
        with pytest.raises(ValueError):
            dataset.column(0)[0] = 3

    def test_compact_dtypes(self):
        dataset = simple_dataset()
        assert dataset.column(0).dtype == np.uint8
        assert dataset.labels.dtype == np.uint8

    def test_wide_domain_gets_wider_dtype(self):
        schema = (FeatureSchema("n", FeatureKind.CATEGORICAL, 1000),)
        dataset = Dataset(schema, [np.asarray([999, 0])], np.asarray([0, 1]))
        assert dataset.column(0).dtype == np.uint16


class TestRecords:
    def test_record_roundtrip(self):
        dataset = simple_dataset()
        record = dataset.record(1)
        assert record == Record(values=(5, 1), label=1)

    def test_record_out_of_range(self):
        with pytest.raises(IndexError):
            simple_dataset().record(4)

    def test_records_iterator(self):
        dataset = simple_dataset()
        records = list(dataset.records([0, 2]))
        assert [record.label for record in records] == [0, 1]

    def test_record_validates_label(self):
        with pytest.raises(ValueError):
            Record(values=(1,), label=2)


class TestSubsetting:
    def test_take_preserves_order(self):
        dataset = simple_dataset()
        subset = dataset.take(np.asarray([2, 0]))
        assert subset.n_rows == 2
        assert subset.record(0).values == (9, 2)
        assert subset.record(1).values == (0, 0)

    def test_drop_removes_rows(self):
        dataset = simple_dataset()
        reduced = dataset.drop([1, 3])
        assert reduced.n_rows == 2
        assert reduced.labels.tolist() == [0, 1]

    def test_feature_matrix_shape(self):
        matrix = simple_dataset().feature_matrix()
        assert matrix.shape == (4, 2)
        assert matrix.dtype == np.int64

    def test_feature_index_lookup(self):
        dataset = simple_dataset()
        assert dataset.feature_index("c") == 1
        with pytest.raises(KeyError):
            dataset.feature_index("missing")
