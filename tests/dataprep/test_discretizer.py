"""Unit and property tests for the quantile discretizer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataprep.discretizer import QuantileDiscretizer

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestFitting:
    def test_requires_two_buckets(self):
        with pytest.raises(ValueError):
            QuantileDiscretizer(n_buckets=1)

    def test_rejects_empty_column(self):
        with pytest.raises(ValueError):
            QuantileDiscretizer().fit(np.asarray([]))

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            QuantileDiscretizer().fit(np.asarray([1.0, np.nan]))

    def test_rejects_matrix_input(self):
        with pytest.raises(ValueError):
            QuantileDiscretizer().fit(np.zeros((3, 3)))

    def test_unfitted_access_raises(self):
        with pytest.raises(RuntimeError):
            _ = QuantileDiscretizer().cuts

    def test_uniform_data_yields_twenty_buckets(self):
        rng = np.random.default_rng(0)
        discretizer = QuantileDiscretizer(20).fit(rng.random(10_000))
        assert discretizer.n_codes == 20
        assert len(discretizer.cuts) == 19

    def test_heavy_ties_collapse_buckets(self):
        values = np.asarray([0.0] * 95 + [1.0] * 5)
        discretizer = QuantileDiscretizer(20).fit(values)
        # Only one distinct cut survives between the two values.
        assert discretizer.n_codes == 2

    def test_constant_column_yields_single_code(self):
        discretizer = QuantileDiscretizer(20).fit(np.full(100, 3.14))
        assert discretizer.n_codes == 1
        assert discretizer.transform(np.asarray([3.14, -1.0, 7.0])).tolist() == [0, 0, 0]


class TestTransform:
    def test_codes_cover_every_bucket(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=20_000)
        discretizer = QuantileDiscretizer(20).fit(values)
        codes = discretizer.transform(values)
        assert set(np.unique(codes)) == set(range(discretizer.n_codes))

    def test_buckets_are_roughly_balanced(self):
        rng = np.random.default_rng(2)
        values = rng.random(20_000)
        discretizer = QuantileDiscretizer(20).fit(values)
        counts = np.bincount(discretizer.transform(values))
        assert counts.min() > 0.5 * counts.mean()
        assert counts.max() < 2.0 * counts.mean()

    def test_dtype_is_uint8_for_few_codes(self):
        discretizer = QuantileDiscretizer(20).fit(np.random.default_rng(3).random(1000))
        assert discretizer.transform(np.asarray([0.5])).dtype == np.uint8

    def test_transform_one(self):
        values = np.arange(100, dtype=np.float64)
        discretizer = QuantileDiscretizer(4).fit(values)
        assert discretizer.transform_one(0.0) == 0
        assert discretizer.transform_one(99.0) == discretizer.n_codes - 1

    @given(st.lists(finite_floats, min_size=5, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_codes_monotone_in_raw_value(self, raw):
        values = np.asarray(raw)
        discretizer = QuantileDiscretizer(10).fit(values)
        ordered = np.sort(values)
        codes = discretizer.transform(ordered)
        assert (np.diff(codes.astype(np.int64)) >= 0).all()

    @given(st.lists(finite_floats, min_size=5, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_codes_within_range(self, raw):
        values = np.asarray(raw)
        discretizer = QuantileDiscretizer(10).fit(values)
        probes = np.asarray([values.min() - 1, values.max() + 1, values.mean()])
        codes = discretizer.transform(probes)
        assert (codes >= 0).all()
        assert (codes < discretizer.n_codes).all()

    @given(st.lists(finite_floats, min_size=5, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_transform_is_idempotent_over_refit(self, raw):
        """Fitting twice on the same data yields identical encodings."""
        values = np.asarray(raw)
        first = QuantileDiscretizer(8).fit(values).transform(values)
        second = QuantileDiscretizer(8).fit(values).transform(values)
        assert np.array_equal(first, second)


class TestBucketBounds:
    def test_bounds_bracket_the_cuts(self):
        values = np.arange(1000, dtype=np.float64)
        discretizer = QuantileDiscretizer(10).fit(values)
        low, high = discretizer.bucket_bounds(0)
        assert low == -np.inf
        assert high == float(discretizer.cuts[0])
        low, high = discretizer.bucket_bounds(discretizer.n_codes - 1)
        assert high == np.inf

    def test_bounds_consistent_with_transform(self):
        rng = np.random.default_rng(4)
        values = rng.normal(size=5000)
        discretizer = QuantileDiscretizer(10).fit(values)
        for code in range(discretizer.n_codes):
            low, high = discretizer.bucket_bounds(code)
            probe = (max(low, values.min() - 1) + min(high, values.max() + 1)) / 2
            assert discretizer.transform_one(probe) == code

    def test_rejects_out_of_range_code(self):
        discretizer = QuantileDiscretizer(10).fit(np.arange(100, dtype=np.float64))
        with pytest.raises(ValueError):
            discretizer.bucket_bounds(discretizer.n_codes)
