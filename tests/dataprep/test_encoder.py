"""Tests for the categorical encoder."""

import numpy as np
import pytest

from repro.dataprep.encoder import CategoricalEncoder


class TestFitting:
    def test_codes_are_dense_and_sorted(self):
        encoder = CategoricalEncoder().fit(["banana", "apple", "cherry", "apple"])
        assert encoder.cardinality == 3
        assert encoder.transform(["apple", "banana", "cherry"]).tolist() == [0, 1, 2]

    def test_rejects_empty_column(self):
        with pytest.raises(ValueError):
            CategoricalEncoder().fit([])

    def test_unfitted_transform_raises(self):
        with pytest.raises(RuntimeError):
            CategoricalEncoder().transform_one("x")

    def test_deterministic_across_orderings(self):
        first = CategoricalEncoder().fit(["b", "a", "c"])
        second = CategoricalEncoder().fit(["c", "b", "a", "a"])
        for value in "abc":
            assert first.transform_one(value) == second.transform_one(value)


class TestTransform:
    def test_transform_returns_int64(self):
        encoder = CategoricalEncoder().fit(["x", "y"])
        codes = encoder.transform(["x", "y", "x"])
        assert codes.dtype == np.int64
        assert codes.tolist() == [0, 1, 0]

    def test_unseen_value_raises_by_default(self):
        encoder = CategoricalEncoder().fit(["x", "y"])
        with pytest.raises(KeyError):
            encoder.transform_one("z")

    def test_unseen_value_maps_to_sentinel_when_enabled(self):
        encoder = CategoricalEncoder(allow_unseen=True).fit(["x", "y"])
        assert encoder.cardinality == 3
        assert encoder.transform_one("z") == encoder.unseen_code
        assert encoder.transform_one("x") == 0

    def test_unseen_code_requires_opt_in(self):
        encoder = CategoricalEncoder().fit(["x"])
        with pytest.raises(RuntimeError):
            _ = encoder.unseen_code

    def test_fit_transform(self):
        encoder = CategoricalEncoder()
        codes = encoder.fit_transform(["m", "f", "m"])
        assert codes.tolist() == [1, 0, 1]


class TestInverse:
    def test_inverse_roundtrip(self):
        encoder = CategoricalEncoder().fit(["red", "green", "blue"])
        for value in ("red", "green", "blue"):
            assert encoder.inverse_transform_one(encoder.transform_one(value)) == value

    def test_inverse_of_sentinel_is_none(self):
        encoder = CategoricalEncoder(allow_unseen=True).fit(["a"])
        assert encoder.inverse_transform_one(encoder.unseen_code) is None

    def test_inverse_requires_fit(self):
        with pytest.raises(RuntimeError):
            CategoricalEncoder().inverse_transform_one(0)
