"""Tests for the end-to-end tabular preprocessor."""

import numpy as np
import pytest

from repro.dataprep.dataset import FeatureKind
from repro.dataprep.pipeline import RawTable, TabularPreprocessor


def raw_table(n_rows=200, seed=0):
    rng = np.random.default_rng(seed)
    return RawTable(
        numeric={
            "age": rng.integers(18, 80, size=n_rows).astype(np.float64),
            "income": rng.lognormal(10, 1, size=n_rows),
        },
        categorical={"colour": rng.choice(["red", "green", "blue"], size=n_rows)},
        labels=rng.integers(0, 2, size=n_rows).astype(np.uint8),
    )


class TestRawTable:
    def test_feature_names_numeric_first(self):
        table = raw_table()
        assert table.feature_names == ("age", "income", "colour")

    def test_validate_catches_length_mismatch(self):
        table = raw_table()
        broken = RawTable(
            numeric={"age": np.zeros(3)},
            categorical=table.categorical,
            labels=table.labels,
        )
        with pytest.raises(ValueError):
            broken.validate()

    def test_validate_requires_features(self):
        with pytest.raises(ValueError):
            RawTable(labels=np.zeros(3)).validate()


class TestFitTransform:
    def test_schema_matches_table(self):
        preprocessor = TabularPreprocessor(n_buckets=10)
        dataset = preprocessor.fit_transform(raw_table())
        kinds = [feature.kind for feature in dataset.schema]
        assert kinds == [
            FeatureKind.NUMERIC,
            FeatureKind.NUMERIC,
            FeatureKind.CATEGORICAL,
        ]
        assert dataset.n_rows == 200

    def test_numeric_codes_bounded_by_buckets(self):
        preprocessor = TabularPreprocessor(n_buckets=10)
        dataset = preprocessor.fit_transform(raw_table())
        assert dataset.column(0).max() < 10

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TabularPreprocessor().transform(raw_table())

    def test_transform_new_sample_with_fitted_proposals(self):
        preprocessor = TabularPreprocessor(n_buckets=10)
        preprocessor.fit(raw_table(seed=0))
        fresh = preprocessor.transform(raw_table(seed=1))
        assert fresh.n_rows == 200

    def test_is_fitted_flag(self):
        preprocessor = TabularPreprocessor()
        assert not preprocessor.is_fitted
        preprocessor.fit(raw_table())
        assert preprocessor.is_fitted


class TestEncodeRecord:
    def test_encode_record_matches_dataset_encoding(self):
        table = raw_table()
        preprocessor = TabularPreprocessor(n_buckets=10)
        dataset = preprocessor.fit_transform(table)
        row = 17
        raw_values = {
            "age": float(table.numeric["age"][row]),
            "income": float(table.numeric["income"][row]),
            "colour": table.categorical["colour"][row],
        }
        record = preprocessor.encode_record(raw_values, label=int(table.labels[row]))
        assert record == dataset.record(row)

    def test_missing_feature_rejected(self):
        preprocessor = TabularPreprocessor().fit(raw_table())
        with pytest.raises(KeyError):
            preprocessor.encode_record({"age": 30.0}, label=0)

    def test_unseen_category_policy(self):
        strict = TabularPreprocessor().fit(raw_table())
        with pytest.raises(KeyError):
            strict.encode_record(
                {"age": 30.0, "income": 1000.0, "colour": "violet"}, label=0
            )
        lenient = TabularPreprocessor(allow_unseen_categories=True).fit(raw_table())
        record = lenient.encode_record(
            {"age": 30.0, "income": 1000.0, "colour": "violet"}, label=0
        )
        assert record.values[2] == lenient.schema[2].n_values - 1
