"""Tests for CSV import/export of raw tables."""

import numpy as np
import pytest

from repro.datasets.io import read_csv, write_csv
from repro.datasets.registry import load_raw


class TestRoundTrip:
    def test_csv_roundtrip_preserves_table(self, tmp_path):
        table = load_raw("income", n_rows=150, seed=5)
        path = tmp_path / "income.csv"
        write_csv(table, path)
        restored = read_csv(
            path,
            numeric_columns=list(table.numeric),
            categorical_columns=list(table.categorical),
        )
        assert restored.n_rows == table.n_rows
        assert np.array_equal(np.asarray(restored.labels), np.asarray(table.labels))
        for name in table.numeric:
            assert np.allclose(restored.numeric[name], np.asarray(table.numeric[name]))
        for name in table.categorical:
            assert list(restored.categorical[name]) == list(table.categorical[name])

    def test_roundtrip_feeds_the_preprocessor(self, tmp_path):
        from repro.dataprep.pipeline import TabularPreprocessor

        table = load_raw("purchase", n_rows=200, seed=6)
        path = tmp_path / "purchase.csv"
        write_csv(table, path)
        restored = read_csv(
            path,
            numeric_columns=list(table.numeric),
            categorical_columns=list(table.categorical),
        )
        direct = TabularPreprocessor(n_buckets=10).fit_transform(table)
        via_csv = TabularPreprocessor(n_buckets=10).fit_transform(restored)
        assert direct.n_rows == via_csv.n_rows
        for index in range(direct.n_features):
            assert np.array_equal(direct.column(index), via_csv.column(index))


class TestReadValidation:
    def test_missing_column_rejected(self, tmp_path):
        table = load_raw("credit", n_rows=50, seed=7)
        path = tmp_path / "credit.csv"
        write_csv(table, path)
        with pytest.raises(ValueError):
            read_csv(path, numeric_columns=["not_there"], categorical_columns=[])

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,label\n")
        with pytest.raises(ValueError):
            read_csv(path, numeric_columns=["a"], categorical_columns=[])

    def test_non_binary_label_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,label\n1.0,3\n")
        with pytest.raises(ValueError):
            read_csv(path, numeric_columns=["a"], categorical_columns=[])

    def test_headerless_file_rejected(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_csv(path, numeric_columns=[], categorical_columns=[])
