"""Tests for the dataset registry against Table 1 of the paper."""

import numpy as np
import pytest

from repro.datasets.registry import (
    DATASETS,
    available_datasets,
    dataset_info,
    load_dataset,
    load_dataset_with_preprocessor,
    load_raw,
)

#: The Table 1 schema of the paper: (rows, #numeric, #categorical).
TABLE1 = {
    "income": (32_560, 4, 8),
    "heart": (70_000, 5, 6),
    "credit": (150_000, 8, 0),
    "recidivism": (7_214, 4, 6),
    "purchase": (12_330, 10, 7),
}


class TestRegistry:
    def test_exactly_the_five_paper_datasets(self):
        assert set(available_datasets()) == set(TABLE1)

    @pytest.mark.parametrize("name", sorted(TABLE1))
    def test_schemas_match_table1(self, name):
        rows, n_numeric, n_categorical = TABLE1[name]
        info = dataset_info(name)
        assert info.n_users == rows
        assert info.n_numeric == n_numeric
        assert info.n_categorical == n_categorical

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("mnist")

    def test_spec_registry_ordered_like_table1(self):
        assert list(DATASETS) == ["income", "heart", "credit", "recidivism", "purchase"]


class TestLoading:
    @pytest.mark.parametrize("name", sorted(TABLE1))
    def test_scaled_loading(self, name):
        dataset = load_dataset(name, n_rows=500, seed=0)
        assert dataset.n_rows == 500
        rows, n_numeric, n_categorical = TABLE1[name]
        assert dataset.n_features == n_numeric + n_categorical
        assert 0 < dataset.n_positive < dataset.n_rows

    def test_raw_loading(self):
        table = load_raw("income", n_rows=300, seed=1)
        assert table.n_rows == 300
        assert len(table.numeric) == 4
        assert len(table.categorical) == 8

    def test_loading_is_deterministic(self):
        first = load_dataset("purchase", n_rows=400, seed=3)
        second = load_dataset("purchase", n_rows=400, seed=3)
        assert np.array_equal(first.labels, second.labels)
        for index in range(first.n_features):
            assert np.array_equal(first.column(index), second.column(index))

    def test_loader_with_preprocessor_encodes_requests(self):
        dataset, preprocessor = load_dataset_with_preprocessor(
            "income", n_rows=400, seed=2
        )
        raw = load_raw("income", n_rows=400, seed=2)
        row = 7
        raw_values = {name: raw.numeric[name][row] for name in raw.numeric}
        raw_values.update(
            {name: raw.categorical[name][row] for name in raw.categorical}
        )
        record = preprocessor.encode_record(raw_values, label=int(raw.labels[row]))
        assert record == dataset.record(row)

    @pytest.mark.parametrize("name", sorted(TABLE1))
    def test_positive_rates_are_plausible(self, name):
        dataset = load_dataset(name, n_rows=2000, seed=0)
        rate = dataset.n_positive / dataset.n_rows
        expected = DATASETS[name].positive_rate
        assert abs(rate - expected) < 0.05
