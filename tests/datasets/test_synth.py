"""Tests for the synthetic dataset engine."""

import numpy as np
import pytest

from repro.datasets.synth import (
    CategoricalFeature,
    DatasetSpec,
    NumericFeature,
    generate_raw,
    integers,
    lognormal,
    normal,
    uniform,
    zero_inflated,
)


def tiny_spec(**overrides) -> DatasetSpec:
    settings = dict(
        name="tiny",
        title="Tiny",
        default_n_rows=500,
        numeric=(
            NumericFeature("x", normal(0.0, 1.0)),
            NumericFeature("y", uniform(0.0, 10.0)),
        ),
        categorical=(
            CategoricalFeature("c", ("a", "b", "c")),
        ),
        positive_rate=0.3,
        n_rules=6,
        noise_scale=0.5,
        concept_seed=1,
    )
    settings.update(overrides)
    return DatasetSpec(**settings)


class TestSpecs:
    def test_feature_counts(self):
        spec = tiny_spec()
        assert spec.n_features == 3
        assert spec.n_data_points == 1500

    def test_categorical_needs_values(self):
        with pytest.raises(ValueError):
            CategoricalFeature("bad", ("only",))

    def test_weights_length_checked(self):
        with pytest.raises(ValueError):
            CategoricalFeature("bad", ("a", "b"), weights=(1.0,))


class TestGeneration:
    def test_shapes_and_labels(self):
        table = generate_raw(tiny_spec(), seed=0)
        assert table.n_rows == 500
        assert set(np.unique(np.asarray(table.labels))).issubset({0, 1})
        assert set(table.numeric) == {"x", "y"}
        assert set(table.categorical) == {"c"}

    def test_positive_rate_is_respected(self):
        table = generate_raw(tiny_spec(), n_rows=4000, seed=1)
        rate = float(np.mean(np.asarray(table.labels)))
        assert 0.25 < rate < 0.35

    def test_deterministic_per_seed(self):
        first = generate_raw(tiny_spec(), seed=5)
        second = generate_raw(tiny_spec(), seed=5)
        assert np.array_equal(first.labels, second.labels)
        assert np.allclose(first.numeric["x"], second.numeric["x"])

    def test_different_seeds_differ(self):
        first = generate_raw(tiny_spec(), seed=1)
        second = generate_raw(tiny_spec(), seed=2)
        assert not np.allclose(first.numeric["x"], second.numeric["x"])

    def test_concept_is_shared_across_samples(self):
        """Two samples of the same dataset follow the same ground truth.

        A model trained on one sample should transfer to another sample far
        better than chance -- evidence the rule committee is seed-stable.
        """
        from repro.baselines.cart import DecisionTreeClassifier
        from repro.dataprep.pipeline import TabularPreprocessor

        spec = tiny_spec(noise_scale=0.2)
        preprocessor = TabularPreprocessor(n_buckets=10)
        train = preprocessor.fit_transform(generate_raw(spec, n_rows=2000, seed=1))
        test = preprocessor.transform(generate_raw(spec, n_rows=2000, seed=2))
        tree = DecisionTreeClassifier(min_samples_leaf=10).fit(train)
        accuracy = float(np.mean(tree.predict_batch(test) == test.labels))
        majority = max(
            float(np.mean(test.labels)), 1 - float(np.mean(test.labels))
        )
        assert accuracy > majority + 0.03

    def test_rejects_zero_rows(self):
        with pytest.raises(ValueError):
            generate_raw(tiny_spec(), n_rows=0)


class TestSamplers:
    def test_integers_bounds(self):
        rng = np.random.default_rng(0)
        values = integers(3, 7)(rng, 1000)
        assert values.min() >= 3
        assert values.max() <= 7

    def test_zero_inflated_fraction(self):
        rng = np.random.default_rng(0)
        values = zero_inflated(lognormal(2.0, 0.5), 0.6)(rng, 5000)
        zero_fraction = float(np.mean(values == 0.0))
        assert 0.5 < zero_fraction < 0.7

    def test_normal_moments(self):
        rng = np.random.default_rng(0)
        values = normal(5.0, 2.0)(rng, 20_000)
        assert abs(values.mean() - 5.0) < 0.1
        assert abs(values.std() - 2.0) < 0.1
