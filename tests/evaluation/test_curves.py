"""Tests for ROC/AUC and precision-recall curves."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.evaluation.curves import (
    auc_for_model,
    auc_score,
    average_precision,
    model_scores,
    pr_curve,
    pr_curve_for_model,
    roc_curve,
    roc_curve_for_model,
)


class TestRocCurve:
    def test_perfect_ranking_has_auc_one(self):
        scores = np.asarray([0.9, 0.8, 0.2, 0.1])
        labels = np.asarray([1, 1, 0, 0])
        assert auc_score(scores, labels) == pytest.approx(1.0)

    def test_inverted_ranking_has_auc_zero(self):
        scores = np.asarray([0.1, 0.2, 0.8, 0.9])
        labels = np.asarray([1, 1, 0, 0])
        assert auc_score(scores, labels) == pytest.approx(0.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        scores = rng.random(4000)
        labels = rng.integers(0, 2, size=4000)
        assert abs(auc_score(scores, labels) - 0.5) < 0.05

    def test_curve_endpoints(self):
        scores = np.asarray([0.9, 0.4, 0.6, 0.1])
        labels = np.asarray([1, 0, 1, 0])
        curve = roc_curve(scores, labels)
        assert curve.false_positive_rate[0] == 0.0
        assert curve.true_positive_rate[0] == 0.0
        assert curve.false_positive_rate[-1] == 1.0
        assert curve.true_positive_rate[-1] == 1.0

    def test_curve_is_monotone(self):
        rng = np.random.default_rng(1)
        scores = rng.random(200)
        labels = rng.integers(0, 2, size=200)
        curve = roc_curve(scores, labels)
        assert (np.diff(curve.false_positive_rate) >= 0).all()
        assert (np.diff(curve.true_positive_rate) >= 0).all()

    def test_ties_are_collapsed(self):
        scores = np.asarray([0.5, 0.5, 0.5, 0.5])
        labels = np.asarray([1, 0, 1, 0])
        curve = roc_curve(scores, labels)
        assert len(curve.thresholds) == 1
        assert auc_score(scores, labels) == pytest.approx(0.5)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_curve(np.asarray([0.1, 0.9]), np.asarray([1, 1]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            roc_curve(np.asarray([0.1]), np.asarray([1, 0]))

    @given(st.lists(st.integers(0, 1), min_size=10, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_auc_equals_rank_statistic(self, label_list):
        """AUC equals the probability a random positive outranks a random
        negative (the Mann-Whitney U statistic)."""
        labels = np.asarray(label_list)
        if labels.sum() in (0, labels.shape[0]):
            return
        rng = np.random.default_rng(7)
        scores = rng.random(labels.shape[0])
        auc = auc_score(scores, labels)
        positives = scores[labels == 1]
        negatives = scores[labels == 0]
        wins = sum(
            (positives > negative).sum() + 0.5 * (positives == negative).sum()
            for negative in negatives
        )
        expected = wins / (len(positives) * len(negatives))
        assert auc == pytest.approx(expected)


class TestPrecisionRecall:
    def test_perfect_ranking_has_ap_one(self):
        scores = np.asarray([0.9, 0.8, 0.2, 0.1])
        labels = np.asarray([1, 1, 0, 0])
        assert average_precision(scores, labels) == pytest.approx(1.0)

    def test_curve_endpoints(self):
        scores = np.asarray([0.9, 0.4, 0.6, 0.1])
        labels = np.asarray([1, 0, 1, 0])
        curve = pr_curve(scores, labels)
        assert curve.recall[-1] == 0.0
        assert curve.precision[-1] == 1.0
        assert curve.recall[0] == 1.0  # lowest threshold captures everything

    def test_recall_is_monotone_non_increasing(self):
        rng = np.random.default_rng(2)
        scores = rng.random(200)
        labels = rng.integers(0, 2, size=200)
        curve = pr_curve(scores, labels)
        assert (np.diff(curve.recall) <= 0).all()

    def test_random_scores_ap_near_base_rate(self):
        rng = np.random.default_rng(3)
        scores = rng.random(4000)
        labels = (rng.random(4000) < 0.3).astype(int)
        assert average_precision(scores, labels) == pytest.approx(0.3, abs=0.05)

    def test_no_positives_rejected(self):
        with pytest.raises(ValueError):
            pr_curve(np.asarray([0.1, 0.9]), np.asarray([0, 0]))


class TestModelCurves:
    """Model-level entry points route through the packed batch kernel."""

    def test_batched_scores_match_per_record_loop(
        self, fitted_model_session, income_split
    ):
        _, test = income_split
        per_record = np.asarray(
            [
                fitted_model_session.predict_proba(test.record(row).values)
                for row in range(test.n_rows)
            ]
        )
        assert np.array_equal(model_scores(fitted_model_session, test), per_record)

    def test_hedgecut_scores_rank_better_than_chance(
        self, fitted_model_session, income_split
    ):
        _, test = income_split
        assert auc_for_model(fitted_model_session, test) > 0.6

    def test_roc_and_pr_agree_with_raw_curves(self, fitted_model_session, income_split):
        _, test = income_split
        scores = model_scores(fitted_model_session, test)
        roc = roc_curve_for_model(fitted_model_session, test)
        assert roc.auc == pytest.approx(auc_score(scores, test.labels))
        pr = pr_curve_for_model(fitted_model_session, test)
        assert pr.average_precision == pytest.approx(
            average_precision(scores, test.labels)
        )
