"""Tests for classification metrics."""

import numpy as np
import pytest

from repro.evaluation.metrics import accuracy, confusion_counts, error_rate


class TestAccuracy:
    def test_perfect_match(self):
        assert accuracy(np.asarray([1, 0, 1]), np.asarray([1, 0, 1])) == 1.0

    def test_partial_match(self):
        assert accuracy(np.asarray([1, 0, 1, 0]), np.asarray([1, 1, 1, 1])) == 0.5

    def test_error_rate_complements(self):
        predicted = np.asarray([1, 0, 0])
        actual = np.asarray([1, 1, 1])
        assert accuracy(predicted, actual) + error_rate(predicted, actual) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.asarray([1]), np.asarray([1, 0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.asarray([]), np.asarray([]))


class TestConfusion:
    def test_counts(self):
        predicted = np.asarray([1, 1, 0, 0, 1])
        actual = np.asarray([1, 0, 0, 1, 1])
        counts = confusion_counts(predicted, actual)
        assert counts.true_positive == 2
        assert counts.false_positive == 1
        assert counts.true_negative == 1
        assert counts.false_negative == 1
        assert counts.n == 5

    def test_precision_recall(self):
        predicted = np.asarray([1, 1, 0, 0])
        actual = np.asarray([1, 0, 0, 1])
        counts = confusion_counts(predicted, actual)
        assert counts.precision == pytest.approx(0.5)
        assert counts.recall == pytest.approx(0.5)

    def test_degenerate_precision(self):
        counts = confusion_counts(np.asarray([0, 0]), np.asarray([1, 1]))
        assert counts.precision == 0.0
        assert counts.recall == 0.0
