"""Tests for train/test splitting."""

import numpy as np
import pytest

from repro.evaluation.splits import train_test_split

from tests.conftest import make_random_dataset


class TestTrainTestSplit:
    def test_split_sizes(self):
        dataset = make_random_dataset(n_rows=100, seed=0)
        train, test = train_test_split(dataset, test_fraction=0.2, seed=0)
        assert train.n_rows == 80
        assert test.n_rows == 20

    def test_split_is_a_partition(self):
        dataset = make_random_dataset(n_rows=100, seed=1)
        train, test = train_test_split(dataset, test_fraction=0.3, seed=1)
        assert train.n_rows + test.n_rows == dataset.n_rows
        # The multiset of labels is preserved.
        combined = np.concatenate([train.labels, test.labels])
        assert sorted(combined.tolist()) == sorted(dataset.labels.tolist())

    def test_deterministic_per_seed(self):
        dataset = make_random_dataset(n_rows=100, seed=2)
        first = train_test_split(dataset, 0.2, seed=7)
        second = train_test_split(dataset, 0.2, seed=7)
        assert np.array_equal(first[0].labels, second[0].labels)

    def test_different_seeds_shuffle_differently(self):
        dataset = make_random_dataset(n_rows=100, seed=3)
        first, _ = train_test_split(dataset, 0.2, seed=1)
        second, _ = train_test_split(dataset, 0.2, seed=2)
        assert not np.array_equal(first.column(0), second.column(0))

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_fraction_rejected(self, fraction):
        dataset = make_random_dataset(n_rows=10, seed=4)
        with pytest.raises(ValueError):
            train_test_split(dataset, fraction)

    def test_degenerate_split_rejected(self):
        dataset = make_random_dataset(n_rows=3, seed=5)
        with pytest.raises(ValueError):
            train_test_split(dataset, 0.01)
