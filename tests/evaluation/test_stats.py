"""Tests for run statistics, timers and the KS helper."""

import time

import numpy as np
import pytest

from repro.evaluation.stats import RunStats, Timer, same_distribution, summarize


class TestSummarize:
    def test_mean_and_std(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.std == pytest.approx(1.0)
        assert stats.n_runs == 3

    def test_single_sample_has_zero_std(self):
        stats = summarize([4.2])
        assert stats.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_format(self):
        assert RunStats(mean=1.2345, std=0.5, n_runs=3).format(2) == "1.23 (±0.50)"


class TestSameDistribution:
    def test_identical_samples_pass(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(size=200)
        same, p_value = same_distribution(samples, samples)
        assert same
        assert p_value == pytest.approx(1.0)

    def test_shifted_samples_fail(self):
        rng = np.random.default_rng(1)
        first = rng.normal(0.0, 1.0, size=300)
        second = rng.normal(5.0, 1.0, size=300)
        same, p_value = same_distribution(first, second)
        assert not same
        assert p_value < 0.01

    def test_same_source_passes(self):
        rng = np.random.default_rng(2)
        first = rng.normal(size=200)
        second = rng.normal(size=200)
        same, _ = same_distribution(first, second)
        assert same


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.009
        assert timer.milliseconds == pytest.approx(timer.seconds * 1e3)
        assert timer.microseconds == pytest.approx(timer.seconds * 1e6)
