"""Tests for the hedgecut-experiments command-line interface."""

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_every_experiment_is_addressable(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_all_keyword(self):
        args = build_parser().parse_args(["all"])
        assert args.experiment == "all"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_dataset_filter(self):
        args = build_parser().parse_args(["figure4b", "--datasets", "income", "heart"])
        assert args.datasets == ["income", "heart"]

    def test_scale_and_trees(self):
        args = build_parser().parse_args(["figure3", "--scale", "0.5", "--trees", "20"])
        assert args.scale == 0.5
        assert args.trees == 20


class TestMain:
    def test_table1_prints_rows(self, capsys):
        exit_code = main(["table1"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "income" in output

    def test_main_returns_zero(self):
        assert main(["table1"]) == 0
