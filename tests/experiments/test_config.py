"""Tests for the experiment configuration."""

import pytest

from repro.experiments.config import MIN_ROWS, ExperimentConfig


class TestConfig:
    def test_defaults_cover_all_datasets(self):
        config = ExperimentConfig()
        assert set(config.datasets) == {
            "income",
            "heart",
            "credit",
            "recidivism",
            "purchase",
        }

    def test_rows_scale_with_dataset_size(self):
        config = ExperimentConfig(scale=0.1)
        assert config.rows_for("credit") == 15_000
        assert config.rows_for("income") == 3_256

    def test_rows_floor(self):
        config = ExperimentConfig(scale=0.001)
        assert config.rows_for("recidivism") == MIN_ROWS

    def test_full_scale_matches_table1(self):
        config = ExperimentConfig(scale=1.0)
        assert config.rows_for("income") == 32_560

    @pytest.mark.parametrize("scale", [0.0, -1.0, 1.5])
    def test_invalid_scale_rejected(self, scale):
        with pytest.raises(ValueError):
            ExperimentConfig(scale=scale)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(datasets=("income", "imagenet"))

    def test_run_seed_is_deterministic_and_distinct(self):
        config = ExperimentConfig(seed=10)
        assert config.run_seed(0) == config.run_seed(0)
        assert config.run_seed(0) != config.run_seed(1)
        assert config.run_seed(0, salt=1) != config.run_seed(0, salt=2)

    def test_with_overrides(self):
        config = ExperimentConfig().with_overrides(n_trees=3)
        assert config.n_trees == 3
        assert config.scale == ExperimentConfig().scale
