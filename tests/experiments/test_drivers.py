"""Smoke and shape tests for every experiment driver.

Each driver runs at a deliberately tiny configuration -- the goal here is
to pin the result *structure* (one row per dataset, well-formed tables,
sane value ranges); the benchmark suite exercises the drivers at the
meaningful scales.
"""

import pytest

from repro.experiments import (
    figure3,
    figure4a,
    figure4b,
    figure4c,
    figure5,
    figure6,
    greedy_validation,
    table1,
    table2,
    vectorisation,
)
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def tiny_config() -> ExperimentConfig:
    return ExperimentConfig(
        scale=0.001,  # floors at MIN_ROWS per dataset
        n_trees=2,
        repeats=2,
        seed=7,
        datasets=("recidivism",),
    )


class TestTable1:
    def test_lists_all_five_datasets(self):
        result = table1.dataset_statistics()
        assert len(result.rows) == 5
        rendered = result.format_table()
        assert "income" in rendered
        assert "150,000" in rendered


class TestGreedyValidation:
    def test_small_run_structure(self):
        result = greedy_validation.run(
            robustness_values=(2,), trials_per_value=50, seed=0
        )
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row.trials == 50
        assert 0 <= row.disagreements <= row.trials
        assert row.trusted_trials <= row.trials
        assert 0.0 <= row.non_robust_fraction <= 1.0
        assert "r" in result.format_table()


class TestFigure3:
    def test_unlearning_is_orders_of_magnitude_faster(self, tiny_config):
        result = figure3.run(tiny_config, unlearn_samples=5)
        assert len(result.rows) == 1
        row = result.rows[0]
        # Even at toy scale, in-place unlearning beats ensemble retraining
        # by a wide margin.
        assert row.speedup_over("random forest") > 10
        assert row.speedup_over("ert") > 10
        assert "speedup" in result.format_table()


class TestTable2:
    def test_throughput_rows(self, tiny_config):
        result = table2.run(tiny_config, n_requests=100)
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row.predictions_per_second.mean > 0
        assert row.predictions_per_second_with_unlearning.mean > 0
        assert 0.0 <= row.ks_p_value <= 1.0
        assert row.batched_rows_per_second is None
        rendered = result.format_table()
        assert "predictions/sec" in rendered
        assert "batched rows/sec" not in rendered

    def test_batched_serving_column(self, tiny_config):
        result = table2.run(tiny_config, n_requests=100, batch_size=32)
        row = result.rows[0]
        assert row.batched_rows_per_second is not None
        assert row.batched_rows_per_second.mean > 0
        assert "batched rows/sec" in result.format_table()


class TestFigure4a:
    def test_unlearn_and_retrain_accuracies_close(self, tiny_config):
        result = figure4a.run(tiny_config)
        row = result.rows[0]
        assert 0.0 <= row.accuracy_unlearned.mean <= 1.0
        assert abs(row.accuracy_unlearned.mean - row.accuracy_retrained.mean) < 0.2
        assert "unlearn" in result.format_table()


class TestFigure4b:
    def test_accuracy_table_structure(self, tiny_config):
        result = figure4b.run(tiny_config)
        row = result.rows[0]
        assert set(row.accuracies) == {
            "decision tree",
            "random forest",
            "ert",
            "hedgecut",
        }
        for stats in row.accuracies.values():
            assert 0.0 <= stats.mean <= 1.0


class TestFigure4c:
    def test_training_times_positive(self, tiny_config):
        result = figure4c.run(tiny_config)
        row = result.rows[0]
        for stats in row.training_ms.values():
            assert stats.mean > 0


class TestVectorisation:
    def test_micro_benchmark_structure(self):
        result = vectorisation.run(
            numeric_records=2000, categorical_records=1000, inner_loops=1, repeats=1
        )
        assert {timing.kernel for timing in result.numeric} == {
            "branching",
            "predicated",
            "vectorised",
            "mlpack",
        }
        vectorised = next(
            timing for timing in result.numeric if timing.kernel == "vectorised"
        )
        branching = next(
            timing for timing in result.numeric if timing.kernel == "branching"
        )
        # numpy bulk kernels must beat the scalar loop decisively.
        assert vectorised.microseconds < branching.microseconds
        assert "credit" in result.format_table()


class TestFigure5:
    def test_b_sweep_structure(self, tiny_config):
        result = figure5.run_b_sweep(tiny_config, values=(1, 5))
        assert len(result.points) == 2
        relative = result.relative_runtime("recidivism")
        assert relative[1.0] == pytest.approx(1.0)
        assert "B" in result.format_table()

    def test_epsilon_sweep_structure(self, tiny_config):
        result = figure5.run_epsilon_sweep(tiny_config, values=(0.001, 0.01))
        assert len(result.points) == 2
        for point in result.points:
            assert 0.0 <= point.accuracy.mean <= 1.0


class TestFigure6:
    def test_non_robust_fraction_structure(self, tiny_config):
        result = figure6.run_non_robust_fraction(tiny_config, epsilons=(0.001, 0.02))
        assert len(result.points) == 2
        for point in result.points:
            assert 0.0 <= point.non_robust_fraction.mean < 1.0
        growth = result.node_growth("recidivism")
        assert growth[0.001] == pytest.approx(1.0)

    def test_split_switches_structure(self, tiny_config):
        result = figure6.run_split_switches(tiny_config, leaf_sizes=(2, 32))
        assert len(result.points) == 2
        for point in result.points:
            assert point.switches_per_tree.mean >= 0.0
        assert "leaf size" in result.format_table()
