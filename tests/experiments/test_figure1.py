"""Tests for the Figure 1 pipeline-contrast driver."""

import pytest

from repro.experiments import figure1
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def result():
    config = ExperimentConfig(
        scale=0.001, n_trees=2, repeats=1, seed=3, datasets=("recidivism",)
    )
    return figure1.run(config)


class TestFigure1Driver:
    def test_pipeline_report_covers_all_stages(self, result):
        stages = [timing.stage for timing in result.pipeline_report.timings]
        assert "provisioning" in stages
        assert "retraining" in stages
        assert "traffic switch" in stages

    def test_inplace_is_orders_of_magnitude_faster(self, result):
        assert result.inplace_seconds > 0
        assert result.speedup > 1000

    def test_format_table_mentions_both_paths(self, result):
        rendered = result.format_table()
        assert "retrain-and-redeploy" in rendered
        assert "in-place unlearning" in rendered
        assert "difference" in rendered
