"""Tests for the ASCII figure rendering."""

import pytest

from repro.experiments.figures import grouped_bars, horizontal_bars, line_series


class TestHorizontalBars:
    def test_scales_to_peak(self):
        rendered = horizontal_bars({"a": 10.0, "b": 5.0}, unit=" ms")
        lines = rendered.splitlines()
        assert lines[0].count("#") > lines[1].count("#")
        assert "10.0 ms" in lines[0]

    def test_title(self):
        rendered = horizontal_bars({"a": 1.0}, title="T")
        assert rendered.splitlines()[0] == "T"

    def test_log_scale_compresses(self):
        linear = horizontal_bars({"big": 1_000_000.0, "small": 100.0})
        logged = horizontal_bars({"big": 1_000_000.0, "small": 100.0}, log_scale=True)
        small_linear = linear.splitlines()[1].count("#")
        small_logged = logged.splitlines()[1].count("#")
        assert small_logged > small_linear
        assert "log scale" in logged

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            horizontal_bars({})
        with pytest.raises(ValueError):
            horizontal_bars({"a": -1.0})

    def test_zero_value_gets_no_bar(self):
        rendered = horizontal_bars({"zero": 0.0, "one": 1.0})
        assert rendered.splitlines()[0].count("#") == 0


class TestGroupedBars:
    def test_one_block_per_group(self):
        rendered = grouped_bars(
            {"income": {"a": 1.0}, "heart": {"a": 2.0}}, title="F"
        )
        assert "-- income --" in rendered
        assert "-- heart --" in rendered
        assert rendered.splitlines()[0] == "F"


class TestLineSeries:
    def test_plots_markers_and_legend(self):
        rendered = line_series(
            {"income": [(1, 0.8), (5, 0.75)], "heart": [(1, 0.7), (5, 0.72)]},
            title="Figure 5(a)",
            y_label="accuracy",
        )
        assert "Figure 5(a)" in rendered
        assert "o=income" in rendered
        assert "x=heart" in rendered
        assert "(y: accuracy)" in rendered

    def test_axis_labels_show_x_values(self):
        rendered = line_series({"s": [(1, 0.0), (100, 1.0)]})
        assert "1" in rendered
        assert "100" in rendered

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            line_series({})

    def test_constant_series_handled(self):
        rendered = line_series({"flat": [(1, 0.5), (2, 0.5)]})
        assert "0.500" in rendered
