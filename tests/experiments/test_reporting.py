"""Tests for the table formatter."""

import pytest

from repro.experiments.reporting import format_table


class TestFormatTable:
    def test_alignment_and_title(self):
        rendered = format_table(
            headers=("name", "value"),
            rows=[("alpha", 1), ("b", 22)],
            title="My table",
        )
        lines = rendered.splitlines()
        assert lines[0] == "My table"
        assert lines[1].startswith("name")
        assert "-----" in lines[2]
        assert lines[3].startswith("alpha")

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            format_table(headers=("a", "b"), rows=[("only-one",)])

    def test_empty_rows_allowed(self):
        rendered = format_table(headers=("a",), rows=[])
        assert "a" in rendered

    def test_cells_are_stringified(self):
        rendered = format_table(headers=("x",), rows=[(3.14,)])
        assert "3.14" in rendered
