"""Behaviour tests for the experiment result objects and their rendering.

The drivers' result dataclasses carry derived quantities (speed-ups,
relative runtimes, node growth) that EXPERIMENTS.md and the benchmark
assertions rely on; these tests pin them on hand-built instances, without
retraining anything.
"""

import pytest

from repro.evaluation.stats import RunStats
from repro.experiments.figure3 import Figure3Result, Figure3Row
from repro.experiments.figure4b import Figure4bResult, Figure4bRow
from repro.experiments.figure5 import SweepPoint, SweepResult
from repro.experiments.figure6 import NonRobustPoint, NonRobustResult
from repro.experiments.vectorisation import KernelTiming


def stats(mean, std=0.0):
    return RunStats(mean=mean, std=std, n_runs=3)


class TestFigure3Row:
    def make_row(self):
        return Figure3Row(
            dataset="income",
            hedgecut_unlearn_us=stats(100.0),
            baseline_retrain_us={
                "decision tree": stats(50_000.0),
                "random forest": stats(200_000.0),
                "ert": stats(300_000.0),
            },
        )

    def test_speedup(self):
        row = self.make_row()
        assert row.speedup_over("ert") == pytest.approx(3000.0)
        assert row.speedup_over("decision tree") == pytest.approx(500.0)

    def test_table_and_figure_render(self):
        result = Figure3Result(rows=(self.make_row(),))
        table = result.format_table()
        assert "income" in table
        assert "3000x" in table
        figure = result.format_figure()
        assert "hedgecut (unlearn)" in figure
        assert "log scale" in figure


class TestFigure4bRow:
    def test_ensemble_ordering_predicate(self):
        row = Figure4bRow(
            dataset="heart",
            accuracies={
                "decision tree": stats(0.70),
                "random forest": stats(0.75),
                "ert": stats(0.76),
                "hedgecut": stats(0.76),
            },
        )
        assert row.ensemble_beats_single_tree()
        worse = Figure4bRow(
            dataset="heart",
            accuracies={
                "decision tree": stats(0.80),
                "random forest": stats(0.75),
                "ert": stats(0.76),
                "hedgecut": stats(0.76),
            },
        )
        assert not worse.ensemble_beats_single_tree()

    def test_figure_render(self):
        result = Figure4bResult(
            rows=(
                Figure4bRow(
                    dataset="heart",
                    accuracies={
                        "decision tree": stats(0.70),
                        "random forest": stats(0.75),
                        "ert": stats(0.76),
                        "hedgecut": stats(0.76),
                    },
                ),
            )
        )
        rendered = result.format_figure()
        assert "-- heart --" in rendered


class TestSweepResult:
    def make_result(self):
        return SweepResult(
            parameter="epsilon",
            points=(
                SweepPoint("income", 0.001, stats(0.80), stats(100.0)),
                SweepPoint("income", 0.02, stats(0.80), stats(150.0)),
                SweepPoint("heart", 0.001, stats(0.75), stats(200.0)),
                SweepPoint("heart", 0.02, stats(0.74), stats(260.0)),
            ),
        )

    def test_relative_runtime_anchors_at_first_value(self):
        result = self.make_result()
        relative = result.relative_runtime("income")
        assert relative[0.001] == pytest.approx(1.0)
        assert relative[0.02] == pytest.approx(1.5)

    def test_for_dataset_filters(self):
        result = self.make_result()
        assert len(result.for_dataset("heart")) == 2

    def test_table_and_figure_render(self):
        result = self.make_result()
        assert "epsilon" in result.format_table()
        assert "accuracy" in result.format_figure()


class TestNonRobustResult:
    def test_node_growth_anchors_at_smallest_epsilon(self):
        result = NonRobustResult(
            points=(
                NonRobustPoint("income", 0.001, stats(0.01), stats(1000.0)),
                NonRobustPoint("income", 0.02, stats(0.03), stats(1800.0)),
            )
        )
        growth = result.node_growth("income")
        assert growth[0.001] == pytest.approx(1.0)
        assert growth[0.02] == pytest.approx(1.8)
        assert "node growth" in result.format_table()


class TestKernelTiming:
    def test_relative_to_baseline(self):
        timing = KernelTiming(kernel="vectorised", microseconds=50.0)
        assert timing.relative_to(100.0) == pytest.approx(-0.5)
        slower = KernelTiming(kernel="predicated", microseconds=150.0)
        assert slower.relative_to(100.0) == pytest.approx(0.5)
