"""Tests for the shared experiment helpers."""

import pytest

from repro.baselines.cart import DecisionTreeClassifier
from repro.baselines.ert import ExtraTreesClassifier
from repro.baselines.forest import RandomForestClassifier
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    BASELINE_NAMES,
    make_baseline,
    make_hedgecut,
    prepare,
)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(scale=0.001, n_trees=3, repeats=1, datasets=("income",))


class TestPrepare:
    def test_prepare_splits_eighty_twenty(self, config):
        data = prepare(config, "income", run_index=0)
        total = data.train.n_rows + data.test.n_rows
        assert total == config.rows_for("income")
        assert data.test.n_rows == pytest.approx(total * 0.2, abs=1)

    def test_prepare_is_deterministic(self, config):
        first = prepare(config, "income", run_index=0)
        second = prepare(config, "income", run_index=0)
        assert first.train.labels.tolist() == second.train.labels.tolist()

    def test_runs_differ(self, config):
        first = prepare(config, "income", run_index=0)
        second = prepare(config, "income", run_index=1)
        assert first.train.labels.tolist() != second.train.labels.tolist()


class TestFactories:
    def test_make_hedgecut_uses_config(self, config):
        model = make_hedgecut(config, seed=1)
        assert model.params.n_trees == config.n_trees
        assert model.params.epsilon == config.epsilon
        assert model.params.seed == 1

    def test_make_hedgecut_overrides(self, config):
        model = make_hedgecut(config, seed=1, epsilon=0.02, min_leaf_size=8)
        assert model.params.epsilon == 0.02
        assert model.params.min_leaf_size == 8

    def test_make_baseline_types(self, config):
        assert isinstance(
            make_baseline("decision tree", config, 0), DecisionTreeClassifier
        )
        assert isinstance(
            make_baseline("random forest", config, 0), RandomForestClassifier
        )
        assert isinstance(make_baseline("ert", config, 0), ExtraTreesClassifier)

    def test_baseline_names_cover_paper(self):
        assert BASELINE_NAMES == ("decision tree", "random forest", "ert")

    def test_unknown_baseline_rejected(self, config):
        with pytest.raises(ValueError):
            make_baseline("xgboost", config, 0)

    def test_ensemble_baselines_share_tree_count(self, config):
        forest = make_baseline("random forest", config, 0)
        ert = make_baseline("ert", config, 0)
        assert forest.n_estimators == config.n_trees
        assert ert.n_estimators == config.n_trees
