"""The compiled-predictor cache must track unlearning mutations.

Leaf-count updates flow through live references; variant switches change
routing structure and must invalidate the affected tree's compiled form.
These tests drive the deployed-model path end to end: predict (compiling
lazily), unlearn until a switch happens, predict again, and cross-check
every prediction against fresh graph traversal.
"""

import numpy as np

from repro.core.ensemble import HedgeCutClassifier
from repro.core.nodes import Leaf, MaintenanceNode

from tests.conftest import make_random_dataset


def graph_vote(model, values):
    """Reference majority vote by direct graph traversal."""
    votes = 0
    for tree in model.trees:
        node = tree.root
        while not isinstance(node, Leaf):
            if isinstance(node, MaintenanceNode):
                node = node.active.child_for_value(values[node.active.split.feature])
            else:
                node = node.child_for_value(values[node.split.feature])
        votes += node.predict()
    return 1 if 2 * votes > len(model.trees) else 0


def test_compiled_predictions_track_unlearning_switches():
    dataset = make_random_dataset(n_rows=300, seed=101)
    model = HedgeCutClassifier(n_trees=5, epsilon=0.05, seed=101)
    model.fit(dataset)

    # Warm the compiled cache.
    probe_rows = list(range(0, dataset.n_rows, 11))
    for row in probe_rows:
        model.predict(dataset.record(row).values)

    # Unlearn until at least one variant switch has occurred (or the
    # budget runs out -- then the test still verifies cache consistency).
    switches = 0
    for row in range(model.deletion_budget):
        switches += model.unlearn(dataset.record(row)).variant_switches

    # After the mutations, compiled predictions must equal graph traversal
    # for every probe -- whether or not trees were recompiled.
    for row in probe_rows:
        values = dataset.record(row).values
        assert model.predict(values) == graph_vote(model, values)
    batch = model.predict_batch(dataset)
    for row in probe_rows:
        assert batch[row] == graph_vote(model, dataset.record(row).values)


def test_leaf_updates_visible_without_structural_switch():
    """Unlearning that flips a leaf majority must show up in compiled
    predictions immediately (live leaf references, no recompilation)."""
    dataset = make_random_dataset(n_rows=200, seed=102)
    model = HedgeCutClassifier(n_trees=1, epsilon=0.2, seed=102)
    model.fit(dataset)

    # Find a record whose leaf is nearly tied, so removals can flip it.
    flipped = False
    for row in range(model.deletion_budget):
        record = dataset.record(row)
        before = model.predict(record.values)
        model.unlearn(record)
        after = model.predict(record.values)
        if before != after:
            flipped = True
            break
    # Either a flip was observed (the strong case) or predictions stayed
    # consistent with graph traversal throughout (the invariant case).
    values = dataset.record(0).values
    assert model.predict(values) == graph_vote(model, values)
    assert isinstance(flipped, bool)
