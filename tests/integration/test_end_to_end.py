"""End-to-end flows over the five synthetic datasets at small scale."""

import numpy as np
import pytest

from repro.core.ensemble import HedgeCutClassifier
from repro.datasets.registry import available_datasets, load_dataset_with_preprocessor, load_raw
from repro.evaluation.metrics import accuracy
from repro.evaluation.splits import train_test_split
from repro.serving.simulator import RequestMix, ServingSimulator


@pytest.mark.parametrize("name", sorted(available_datasets()))
def test_fit_predict_unlearn_flow(name):
    dataset, _ = load_dataset_with_preprocessor(name, n_rows=500, seed=1)
    train, test = train_test_split(dataset, test_fraction=0.2, seed=1)
    model = HedgeCutClassifier(n_trees=3, epsilon=0.01, seed=1)
    model.fit(train)

    predictions = model.predict_batch(test)
    majority = max(float(np.mean(test.labels)), 1 - float(np.mean(test.labels)))
    assert accuracy(predictions, test.labels) >= majority - 0.12

    for row in range(model.deletion_budget):
        report = model.unlearn(train.record(row))
        assert report.leaves_updated >= len(model.trees)
    assert model.remaining_deletion_budget == 0


def test_serving_flow_with_raw_deletion_requests():
    """A GDPR deletion request arrives as raw values, like in Figure 1."""
    dataset, preprocessor = load_dataset_with_preprocessor("income", n_rows=500, seed=2)
    raw = load_raw("income", n_rows=500, seed=2)
    train, test = train_test_split(dataset, test_fraction=0.2, seed=2)
    model = HedgeCutClassifier(n_trees=3, epsilon=0.01, seed=2)
    model.fit(train)

    # The serving system retrieves the user's raw data with a point query
    # and encodes it on the fly.
    row = 42
    raw_values = {name: raw.numeric[name][row] for name in raw.numeric}
    raw_values.update({name: raw.categorical[name][row] for name in raw.categorical})
    record = preprocessor.encode_record(raw_values, label=int(raw.labels[row]))

    # The encoded record may or may not be in the (shuffled) training split;
    # unlearning must either apply cleanly or fail loudly, never corrupt.
    before = model.predict_batch(test)
    try:
        model.unlearn(record)
    except Exception:
        pass
    after = model.predict_batch(test)
    assert after.shape == before.shape


def test_serving_simulator_throughput_is_stable_under_unlearning():
    dataset, _ = load_dataset_with_preprocessor("recidivism", n_rows=500, seed=3)
    train, test = train_test_split(dataset, test_fraction=0.2, seed=3)
    model = HedgeCutClassifier(n_trees=3, epsilon=0.05, seed=3)
    model.fit(train)

    pure = ServingSimulator(model, test, seed=0).run(RequestMix(n_requests=300))
    pool = [train.record(row) for row in range(model.deletion_budget)]
    mixed = ServingSimulator(model, test, unlearn_pool=pool, seed=0).run(
        RequestMix(n_requests=300, unlearn_fraction=0.01)
    )
    assert mixed.n_unlearnings >= 1
    # Mixed-in unlearning must not collapse throughput (paper: no
    # significant difference; we allow a generous factor at toy scale).
    assert mixed.requests_per_second > 0.2 * pure.requests_per_second


def test_model_survives_save_load_unlearn_cycle(tmp_path):
    dataset, _ = load_dataset_with_preprocessor("purchase", n_rows=500, seed=4)
    train, test = train_test_split(dataset, test_fraction=0.2, seed=4)
    model = HedgeCutClassifier(n_trees=3, epsilon=0.01, seed=4)
    model.fit(train)
    model.unlearn(train.record(0))
    model.save(tmp_path / "deployed.bin")

    restored = HedgeCutClassifier.load(tmp_path / "deployed.bin")
    assert restored.n_unlearned == 1
    if restored.remaining_deletion_budget:
        restored.unlearn(train.record(1))
    assert np.array_equal(
        restored.predict_batch(test).shape, model.predict_batch(test).shape
    )
