"""Failure-injection tests: the model must fail loudly, never corrupt.

A deployed model that mutates in place must defend its invariants against
operational mistakes: double deletions, records from the wrong dataset,
malformed requests, exhausted budgets.
"""

import numpy as np
import pytest

from repro.core.ensemble import HedgeCutClassifier
from repro.core.exceptions import (
    DeletionBudgetExhausted,
    NotFittedError,
    UnlearningError,
)
from repro.dataprep.dataset import Record

from tests.conftest import make_random_dataset


@pytest.fixture()
def model_and_data():
    dataset = make_random_dataset(n_rows=250, seed=51)
    model = HedgeCutClassifier(n_trees=3, epsilon=0.05, seed=51)
    model.fit(dataset)
    return model, dataset


class TestDoubleDeletion:
    def test_deleting_the_same_unique_record_twice_fails(self, model_and_data):
        model, dataset = model_and_data
        # Construct a record that is unique in the dataset by checking the
        # feature matrix; duplicated feature rows are legal to delete twice
        # (two users may share encoded values), unique ones are not.
        matrix = dataset.feature_matrix()
        _, first_index, counts = np.unique(
            np.column_stack([matrix, dataset.labels]),
            axis=0,
            return_index=True,
            return_counts=True,
        )
        unique_rows = first_index[counts == 1]
        if unique_rows.size == 0:
            pytest.skip("no unique record in this sample")
        record = dataset.record(int(unique_rows[0]))
        model.unlearn(record)
        with pytest.raises(UnlearningError):
            model.unlearn(record, allow_budget_overrun=True)

    def test_failed_unlearn_surfaces_rather_than_corrupts(self, model_and_data):
        model, dataset = model_and_data
        foreign = Record(values=tuple(0 for _ in range(dataset.n_features)), label=1)
        try:
            while True:
                model.unlearn(foreign, allow_budget_overrun=True)
        except UnlearningError:
            pass
        # The model keeps serving predictions after the failure.
        predictions = model.predict_batch(dataset)
        assert set(np.unique(predictions)).issubset({0, 1})


class TestMalformedRequests:
    def test_wrong_arity_record(self, model_and_data):
        model, _ = model_and_data
        with pytest.raises(UnlearningError):
            model.unlearn(Record(values=(1, 2), label=0))

    def test_non_record_payload(self, model_and_data):
        model, _ = model_and_data
        with pytest.raises(TypeError):
            model.unlearn([0, 1, 2])

    def test_record_rejects_non_binary_label(self):
        with pytest.raises(ValueError):
            Record(values=(0, 0, 0), label=7)


class TestBudget:
    def test_budget_exhaustion_is_a_hard_stop(self, model_and_data):
        model, dataset = model_and_data
        for row in range(model.deletion_budget):
            model.unlearn(dataset.record(row))
        with pytest.raises(DeletionBudgetExhausted):
            model.unlearn(dataset.record(model.deletion_budget))
        # The failed request must not have been half-applied.
        assert model.n_unlearned == model.deletion_budget

    def test_refit_resets_budget(self, model_and_data):
        model, dataset = model_and_data
        model.unlearn(dataset.record(0))
        assert model.n_unlearned == 1
        model.fit(dataset)
        assert model.n_unlearned == 0
        assert model.remaining_deletion_budget == model.deletion_budget


class TestLifecycle:
    def test_unfitted_model_rejects_everything(self):
        model = HedgeCutClassifier(n_trees=2)
        with pytest.raises(NotFittedError):
            model.predict((0,))
        with pytest.raises(NotFittedError):
            model.node_census()
        with pytest.raises(NotFittedError):
            _ = model.schema

    def test_prediction_with_out_of_domain_codes(self, model_and_data):
        """Codes beyond the training domain route like extreme values."""
        model, dataset = model_and_data
        extreme = tuple(
            feature.n_values + 5 for feature in model.schema
        )
        assert model.predict(extreme) in (0, 1)
