"""Hypothesis-driven end-to-end unlearning properties.

These generate small random datasets and removal sets and assert the two
behavioural contracts on whole models: statistics always equal a recount
of the survivors, and the compiled predictor always agrees with the node
graph -- across random shapes, class skews and epsilon settings.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.compiled import CompiledTree
from repro.core.ensemble import HedgeCutClassifier
from repro.core.nodes import Leaf, MaintenanceNode
from repro.dataprep.dataset import Dataset, FeatureKind, FeatureSchema

from tests.integration.test_unlearn_equals_retrain import assert_counts_match


@st.composite
def small_dataset(draw):
    n_rows = draw(st.integers(min_value=30, max_value=90))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    positive_rate = draw(st.floats(min_value=0.15, max_value=0.85))
    rng = np.random.default_rng(seed)
    schema = (
        FeatureSchema("x", FeatureKind.NUMERIC, 6),
        FeatureSchema("y", FeatureKind.CATEGORICAL, 3),
    )
    x = rng.integers(0, 6, size=n_rows)
    y = rng.integers(0, 3, size=n_rows)
    signal = (x >= 3).astype(float)
    labels = (rng.random(n_rows) < (0.2 + 0.6 * signal) * positive_rate / 0.5).astype(
        np.uint8
    )
    labels = np.clip(labels, 0, 1)
    return Dataset(schema, [x, y], labels), seed


class TestUnlearningProperties:
    @given(small_dataset(), st.data())
    @settings(max_examples=20, deadline=None)
    def test_statistics_always_equal_recount(self, dataset_and_seed, data):
        dataset, seed = dataset_and_seed
        model = HedgeCutClassifier(n_trees=2, epsilon=0.1, seed=seed)
        model.fit(dataset)
        n_remove = data.draw(
            st.integers(min_value=0, max_value=min(4, model.deletion_budget))
        )
        removed = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=dataset.n_rows - 1),
                min_size=n_remove,
                max_size=n_remove,
                unique=True,
            )
        )
        for row in removed:
            model.unlearn(dataset.record(row))
        surviving = [
            dataset.record(row)
            for row in range(dataset.n_rows)
            if row not in set(removed)
        ]
        for tree in model.trees:
            assert_counts_match(tree.root, surviving)

    @given(small_dataset())
    @settings(max_examples=20, deadline=None)
    def test_compiled_always_matches_graph(self, dataset_and_seed):
        dataset, seed = dataset_and_seed
        model = HedgeCutClassifier(n_trees=2, epsilon=0.05, seed=seed)
        model.fit(dataset)

        def graph_predict(node, values):
            while not isinstance(node, Leaf):
                if isinstance(node, MaintenanceNode):
                    node = node.active.child_for_value(
                        values[node.active.split.feature]
                    )
                else:
                    node = node.child_for_value(values[node.split.feature])
            return node.predict()

        for tree in model.trees:
            compiled = CompiledTree.from_tree(tree.root)
            for row in range(0, dataset.n_rows, 7):
                values = dataset.record(row).values
                assert compiled.predict_value(values) == graph_predict(
                    tree.root, values
                )
