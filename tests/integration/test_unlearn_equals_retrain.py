"""The central correctness property: unlearning equals recounting.

HedgeCut's contract (Section 2) is ``t_unlearn(f, Dr) = t_learn(D \\ Dr)``
for the same random choices. Tree *structure* is frozen at training time
(robust splits) or maintained via variants, so the testable ground truth
is: after unlearning ``Dr``, every leaf statistic and every split statistic
in the ensemble must equal the counts obtained by re-filtering the
*surviving* records through the same structure. These tests compute that
reference filtering independently of the unlearning code.
"""

import numpy as np
import pytest

from repro.core.ensemble import HedgeCutClassifier
from repro.core.nodes import Leaf, MaintenanceNode, SplitNode

from tests.conftest import make_random_dataset


def assert_counts_match(node, records):
    """Recursively verify node statistics against an explicit record set."""
    n = len(records)
    n_plus = sum(record.label for record in records)
    if isinstance(node, Leaf):
        assert node.n == n
        assert node.n_plus == n_plus
        return
    if isinstance(node, SplitNode):
        variants = [(node.split, node.stats, node.left, node.right)]
    else:
        variants = [
            (variant.split, variant.stats, variant.left, variant.right)
            for variant in node.variants
        ]
    for split, stats, left, right in variants:
        left_records = [
            record
            for record in records
            if split.goes_left_value(record.values[split.feature])
        ]
        right_records = [
            record
            for record in records
            if not split.goes_left_value(record.values[split.feature])
        ]
        assert stats.n == n
        assert stats.n_plus == n_plus
        assert stats.n_left == len(left_records)
        assert stats.n_left_plus == sum(record.label for record in left_records)
        assert_counts_match(left, left_records)
        assert_counts_match(right, right_records)


def assert_active_variants_maximal(node):
    """Every maintenance node must delegate to its highest-gain variant."""
    if isinstance(node, Leaf):
        return
    if isinstance(node, SplitNode):
        assert_active_variants_maximal(node.left)
        assert_active_variants_maximal(node.right)
        return
    gains = [variant.stats.gini_gain() for variant in node.variants]
    assert node.active.stats.gini_gain() == pytest.approx(max(gains))
    for variant in node.variants:
        assert_active_variants_maximal(variant.left)
        assert_active_variants_maximal(variant.right)


@pytest.mark.parametrize("epsilon", [0.02, 0.05])
def test_statistics_equal_recount_after_unlearning(epsilon):
    dataset = make_random_dataset(n_rows=300, seed=31)
    model = HedgeCutClassifier(n_trees=3, epsilon=epsilon, seed=31)
    model.fit(dataset)

    rng = np.random.default_rng(31)
    removed_rows = rng.choice(dataset.n_rows, size=model.deletion_budget, replace=False)
    for row in removed_rows:
        model.unlearn(dataset.record(int(row)))

    surviving_rows = sorted(set(range(dataset.n_rows)) - {int(r) for r in removed_rows})
    surviving = [dataset.record(row) for row in surviving_rows]
    for tree in model.trees:
        assert_counts_match(tree.root, surviving)


def test_active_variants_are_rescored_after_unlearning():
    dataset = make_random_dataset(n_rows=300, seed=32)
    model = HedgeCutClassifier(n_trees=3, epsilon=0.05, seed=32)
    model.fit(dataset)
    for row in range(model.deletion_budget):
        model.unlearn(dataset.record(row))
    for tree in model.trees:
        assert_active_variants_maximal(tree.root)


def test_unlearned_model_matches_structure_frozen_retrain_predictions():
    """After unlearning, predictions come from the recounted statistics.

    Combined with ``test_statistics_equal_recount_after_unlearning`` this
    certifies the behavioural contract: the deployed model answers exactly
    as if its statistics had been computed on the surviving data.
    """
    dataset = make_random_dataset(n_rows=300, seed=33)
    model = HedgeCutClassifier(n_trees=5, epsilon=0.03, seed=33)
    model.fit(dataset)
    removed = list(range(model.deletion_budget))
    for row in removed:
        model.unlearn(dataset.record(row))

    # Rebuild predictions from scratch using the verified statistics path:
    # batch prediction must agree with per-record graph traversal on every
    # surviving and removed record alike.
    batch = model.predict_batch(dataset)
    for row in range(dataset.n_rows):
        assert batch[row] == model.predict(dataset.record(row).values)


def test_unlearning_full_budget_keeps_accuracy_close_to_retrain():
    """A miniature Figure 4(a): unlearn vs retrain accuracy gap is small."""
    dataset = make_random_dataset(n_rows=400, seed=34)
    train = dataset.take(np.arange(320))
    test = dataset.take(np.arange(320, 400))

    model = HedgeCutClassifier(n_trees=10, epsilon=0.02, seed=34)
    model.fit(train)
    removed = list(range(model.deletion_budget))
    for row in removed:
        model.unlearn(train.record(row))
    unlearned_accuracy = float(np.mean(model.predict_batch(test) == test.labels))

    retrained = HedgeCutClassifier(n_trees=10, epsilon=0.02, seed=34)
    retrained.fit(train.drop(removed))
    retrained_accuracy = float(np.mean(retrained.predict_batch(test) == test.labels))

    assert abs(unlearned_accuracy - retrained_accuracy) < 0.1
