"""Crash recovery mid-deferral: WAL replay must equal the flushed model.

The WAL-ordering argument for deferred maintenance: every operation is
logged *before* it is applied, and the pending tag log is pure
derived-state -- so a process that crashes with re-scores still pending
loses nothing. Recovery replays the mixed insert/delete tail eagerly and
must land bit-identical to the surviving live model *after* it flushes.
These tests kill the process mid-deferral at several points and check
exactly that, plus the insertion-frame plumbing the replay rides on.
"""

import copy

import numpy as np
import pytest

from repro.core.ensemble import HedgeCutClassifier
from repro.persistence.store import ModelStore
from repro.persistence.wal import DeletionRecord, InsertionRecord, WriteAheadLog

from tests.conftest import make_random_dataset


@pytest.fixture(scope="module")
def setup():
    dataset = make_random_dataset(n_rows=300, seed=11)
    model = HedgeCutClassifier(
        n_trees=4, epsilon=0.05, seed=5, maintenance="deferred"
    ).fit(dataset)
    assert model.node_census().n_maintenance_nodes > 0
    return model, dataset


def _mixed_ops(dataset, k):
    """The first ``k`` of a fixed mixed insert/delete schedule."""
    ops = []
    for step in range(k):
        if step % 3 == 2:
            ops.append(("insert", dataset.record(200 + step)))
        else:
            ops.append(("delete", dataset.record(step)))
    return ops


def _crash_mid_deferral(store_dir, model, dataset, k):
    """Log + apply ``k`` deferred ops, then 'crash' without flushing."""
    work = copy.deepcopy(model)
    work.flush_on_predict = False
    with ModelStore(store_dir) as store:
        store.save_snapshot(work, wal_seq=0)
        for kind, record in _mixed_ops(dataset, k):
            if kind == "insert":
                store.wal.append_insertion(record, request_id="ins")
                work.learn_one(record)
            else:
                store.wal.append(record, request_id="del", allow_budget_overrun=True)
                work.unlearn(record, allow_budget_overrun=True)
        assert work.pending_maintenance_visits > 0  # genuinely mid-deferral


class TestCrashMidDeferral:
    @pytest.mark.parametrize("k", [3, 10, 24])
    def test_recovery_equals_live_flushed_model(self, tmp_path, setup, k):
        model, dataset = setup
        _crash_mid_deferral(tmp_path / "store", model, dataset, k)

        live = copy.deepcopy(model)
        live.flush_on_predict = False
        for kind, record in _mixed_ops(dataset, k):
            if kind == "insert":
                live.learn_one(record)
            else:
                live.unlearn(record, allow_budget_overrun=True)
        live.flush_maintenance()

        recovered = ModelStore(tmp_path / "store").recover()
        assert recovered.n_replayed == k
        assert recovered.n_replay_failures == 0
        assert recovered.model.pending_maintenance_visits == 0
        np.testing.assert_array_equal(
            recovered.model.predict_proba_batch(dataset),
            live.predict_proba_batch(dataset),
        )

    def test_snapshot_mid_deferral_flushes_first(self, tmp_path, setup):
        model, dataset = setup
        work = copy.deepcopy(model)
        work.flush_on_predict = False
        with ModelStore(tmp_path / "store") as store:
            store.save_snapshot(work, wal_seq=0)
            for kind, record in _mixed_ops(dataset, 10):
                if kind == "insert":
                    store.wal.append_insertion(record, request_id="ins")
                    work.learn_one(record)
                else:
                    store.wal.append(
                        record, request_id="del", allow_budget_overrun=True
                    )
                    work.unlearn(record, allow_budget_overrun=True)
            assert work.pending_maintenance_visits > 0
            # Snapshotting cuts mid-deferral: it must flush the model so
            # the npz (which knows nothing of pending tags) is a correct
            # replay prefix.
            store.save_snapshot(work, wal_seq=store.wal.last_seq)
            assert work.pending_maintenance_visits == 0

        recovered = ModelStore(tmp_path / "store").recover()
        assert recovered.n_replayed == 0  # tail fully covered by snapshot
        np.testing.assert_array_equal(
            recovered.model.predict_proba_batch(dataset),
            work.predict_proba_batch(dataset),
        )


class TestInsertionFrames:
    def test_interleaving_survives_in_shared_sequence(self, tmp_path, setup):
        _, dataset = setup
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append(dataset.record(0), request_id="d0")
        wal.append_insertion(dataset.record(1), request_id="i0")
        wal.append(dataset.record(2), request_id="d1")
        wal.close()

        frames = list(WriteAheadLog(tmp_path / "wal").frames())
        assert [type(frame) for frame in frames] == [
            DeletionRecord,
            InsertionRecord,
            DeletionRecord,
        ]
        assert [frame.seq for frame in frames] == [1, 2, 3]
        insert = frames[1]
        assert insert.to_record().values == dataset.record(1).values
        assert insert.to_record().label == dataset.record(1).label

    def test_records_iterator_stays_deletions_only(self, tmp_path, setup):
        _, dataset = setup
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append(dataset.record(0), request_id="d0")
        wal.append_insertion(dataset.record(1), request_id="i0")
        wal.close()
        records = list(WriteAheadLog(tmp_path / "wal").records())
        assert len(records) == 1
        assert isinstance(records[0], DeletionRecord)
