"""Crash-recovery tests: kill-after-K-deletions, restore, compare.

The acceptance property: a process that snapshots its model, applies K
durably logged deletions and then crashes must recover -- latest snapshot
plus WAL-tail replay -- to a state whose predictions are identical to an
uninterrupted model that applied the same deletion sequence. The model
under test contains maintenance nodes, so recovery also exercises variant
statistics and active-variant switches.
"""

import copy

import numpy as np
import pytest

from repro.core.ensemble import HedgeCutClassifier
from repro.core.exceptions import HedgeCutError
from repro.persistence.store import ModelStore

from tests.conftest import make_random_dataset


@pytest.fixture(scope="module")
def noisy_setup():
    dataset = make_random_dataset(n_rows=300, seed=11)
    model = HedgeCutClassifier(n_trees=4, epsilon=0.05, seed=5).fit(dataset)
    assert model.node_census().n_maintenance_nodes > 0
    return model, dataset


def _crash_after_k_deletions(store_dir, model, dataset, k, snapshot_at=0):
    """Run the durability protocol for ``k`` deletions, then 'crash'.

    Returns nothing: the only survivors are the files in ``store_dir``,
    exactly as after a real process kill (the in-memory model is dropped).
    """
    work = copy.deepcopy(model)
    with ModelStore(store_dir) as store:
        store.save_snapshot(work, wal_seq=0)
        for row in range(k):
            record = dataset.record(row)
            store.wal.append(record, request_id=f"req-{row}", allow_budget_overrun=True)
            work.unlearn(record, allow_budget_overrun=True)
            if snapshot_at and row + 1 == snapshot_at:
                store.save_snapshot(work, wal_seq=store.wal.last_seq)
        # Crash: no final snapshot, no clean shutdown beyond closing the
        # file handle (appends are flushed per record).


class TestCrashRecovery:
    @pytest.mark.parametrize("k", [1, 7, 15])
    def test_recovered_equals_uninterrupted(self, tmp_path, noisy_setup, k):
        model, dataset = noisy_setup
        _crash_after_k_deletions(tmp_path / "store", model, dataset, k)

        uninterrupted = copy.deepcopy(model)
        for row in range(k):
            uninterrupted.unlearn(dataset.record(row), allow_budget_overrun=True)

        recovered = ModelStore(tmp_path / "store").recover()
        assert recovered.n_replayed == k
        assert recovered.wal_seq == k
        assert recovered.model.n_unlearned == uninterrupted.n_unlearned
        assert np.array_equal(
            recovered.model.predict_batch(dataset),
            uninterrupted.predict_batch(dataset),
        )

    def test_mid_campaign_snapshot_replays_only_the_tail(self, tmp_path, noisy_setup):
        model, dataset = noisy_setup
        _crash_after_k_deletions(tmp_path / "store", model, dataset, k=12, snapshot_at=5)

        uninterrupted = copy.deepcopy(model)
        for row in range(12):
            uninterrupted.unlearn(dataset.record(row), allow_budget_overrun=True)

        recovered = ModelStore(tmp_path / "store").recover()
        # The snapshot at seq 5 absorbs the first five deletions.
        assert recovered.snapshot is not None
        assert recovered.snapshot.wal_seq == 5
        assert recovered.n_replayed == 7
        assert np.array_equal(
            recovered.model.predict_batch(dataset),
            uninterrupted.predict_batch(dataset),
        )

    def test_recovery_continues_unlearning_identically(self, tmp_path, noisy_setup):
        """Recover mid-campaign, then finish the campaign on both sides."""
        model, dataset = noisy_setup
        _crash_after_k_deletions(tmp_path / "store", model, dataset, k=6)

        uninterrupted = copy.deepcopy(model)
        for row in range(6):
            uninterrupted.unlearn(dataset.record(row), allow_budget_overrun=True)

        recovered = ModelStore(tmp_path / "store").recover().model
        for row in range(6, 15):
            uninterrupted.unlearn(dataset.record(row), allow_budget_overrun=True)
            recovered.unlearn(dataset.record(row), allow_budget_overrun=True)
        assert np.array_equal(
            recovered.predict_batch(dataset), uninterrupted.predict_batch(dataset)
        )

    def test_corrupt_latest_snapshot_falls_back(self, tmp_path, noisy_setup):
        model, dataset = noisy_setup
        store_dir = tmp_path / "store"
        _crash_after_k_deletions(store_dir, model, dataset, k=8, snapshot_at=4)

        snapshots = ModelStore(store_dir).snapshot_paths()
        assert len(snapshots) == 2
        latest = snapshots[-1]
        latest.write_bytes(latest.read_bytes()[:-40] + b"\x00" * 40)

        uninterrupted = copy.deepcopy(model)
        for row in range(8):
            uninterrupted.unlearn(dataset.record(row), allow_budget_overrun=True)

        recovered = ModelStore(store_dir).recover()
        assert recovered.skipped_snapshots == [latest]
        assert np.array_equal(
            recovered.model.predict_batch(dataset),
            uninterrupted.predict_batch(dataset),
        )

    def test_empty_store_raises(self, tmp_path):
        with pytest.raises(HedgeCutError):
            ModelStore(tmp_path / "empty").recover()


class TestSnapshotHousekeeping:
    def test_snapshots_are_pruned(self, tmp_path, noisy_setup):
        model, dataset = noisy_setup
        work = copy.deepcopy(model)
        with ModelStore(tmp_path / "store", keep_snapshots=2) as store:
            store.save_snapshot(work, wal_seq=0)
            for row in range(6):
                record = dataset.record(row)
                store.wal.append(record, allow_budget_overrun=True)
                work.unlearn(record, allow_budget_overrun=True)
                store.save_snapshot(work)
            assert len(store.snapshot_paths()) == 2

    def test_snapshot_compacts_wal(self, tmp_path, noisy_setup):
        model, dataset = noisy_setup
        work = copy.deepcopy(model)
        with ModelStore(tmp_path / "store") as store:
            for row in range(5):
                record = dataset.record(row)
                store.wal.append(record, allow_budget_overrun=True)
                work.unlearn(record, allow_budget_overrun=True)
            store.save_snapshot(work)
            # Everything up to the snapshot is compacted away.
            assert list(store.wal.records(after_seq=0)) == []
            assert store.wal.last_seq == 5  # sequence numbering continues
