"""Crash-recovery tests: kill-after-K-deletions, restore, compare.

The acceptance property: a process that snapshots its model, applies K
durably logged deletions and then crashes must recover -- latest snapshot
plus WAL-tail replay -- to a state whose predictions are identical to an
uninterrupted model that applied the same deletion sequence. The model
under test contains maintenance nodes, so recovery also exercises variant
statistics and active-variant switches.
"""

import copy

import numpy as np
import pytest

from repro.core.ensemble import HedgeCutClassifier
from repro.core.exceptions import HedgeCutError
from repro.persistence.store import ModelStore

from tests.conftest import make_random_dataset


@pytest.fixture(scope="module")
def noisy_setup():
    dataset = make_random_dataset(n_rows=300, seed=11)
    model = HedgeCutClassifier(n_trees=4, epsilon=0.05, seed=5).fit(dataset)
    assert model.node_census().n_maintenance_nodes > 0
    return model, dataset


def _crash_after_k_deletions(store_dir, model, dataset, k, snapshot_at=0):
    """Run the durability protocol for ``k`` deletions, then 'crash'.

    Returns nothing: the only survivors are the files in ``store_dir``,
    exactly as after a real process kill (the in-memory model is dropped).
    """
    work = copy.deepcopy(model)
    with ModelStore(store_dir) as store:
        store.save_snapshot(work, wal_seq=0)
        for row in range(k):
            record = dataset.record(row)
            store.wal.append(record, request_id=f"req-{row}", allow_budget_overrun=True)
            work.unlearn(record, allow_budget_overrun=True)
            if snapshot_at and row + 1 == snapshot_at:
                store.save_snapshot(work, wal_seq=store.wal.last_seq)
        # Crash: no final snapshot, no clean shutdown beyond closing the
        # file handle (appends are flushed per record).


class TestCrashRecovery:
    @pytest.mark.parametrize("k", [1, 7, 15])
    def test_recovered_equals_uninterrupted(self, tmp_path, noisy_setup, k):
        model, dataset = noisy_setup
        _crash_after_k_deletions(tmp_path / "store", model, dataset, k)

        uninterrupted = copy.deepcopy(model)
        for row in range(k):
            uninterrupted.unlearn(dataset.record(row), allow_budget_overrun=True)

        recovered = ModelStore(tmp_path / "store").recover()
        assert recovered.n_replayed == k
        assert recovered.wal_seq == k
        assert recovered.model.n_unlearned == uninterrupted.n_unlearned
        assert np.array_equal(
            recovered.model.predict_batch(dataset),
            uninterrupted.predict_batch(dataset),
        )

    def test_mid_campaign_snapshot_replays_only_the_tail(self, tmp_path, noisy_setup):
        model, dataset = noisy_setup
        _crash_after_k_deletions(tmp_path / "store", model, dataset, k=12, snapshot_at=5)

        uninterrupted = copy.deepcopy(model)
        for row in range(12):
            uninterrupted.unlearn(dataset.record(row), allow_budget_overrun=True)

        recovered = ModelStore(tmp_path / "store").recover()
        # The snapshot at seq 5 absorbs the first five deletions.
        assert recovered.snapshot is not None
        assert recovered.snapshot.wal_seq == 5
        assert recovered.n_replayed == 7
        assert np.array_equal(
            recovered.model.predict_batch(dataset),
            uninterrupted.predict_batch(dataset),
        )

    def test_recovery_continues_unlearning_identically(self, tmp_path, noisy_setup):
        """Recover mid-campaign, then finish the campaign on both sides."""
        model, dataset = noisy_setup
        _crash_after_k_deletions(tmp_path / "store", model, dataset, k=6)

        uninterrupted = copy.deepcopy(model)
        for row in range(6):
            uninterrupted.unlearn(dataset.record(row), allow_budget_overrun=True)

        recovered = ModelStore(tmp_path / "store").recover().model
        for row in range(6, 15):
            uninterrupted.unlearn(dataset.record(row), allow_budget_overrun=True)
            recovered.unlearn(dataset.record(row), allow_budget_overrun=True)
        assert np.array_equal(
            recovered.predict_batch(dataset), uninterrupted.predict_batch(dataset)
        )

    def test_corrupt_latest_snapshot_falls_back(self, tmp_path, noisy_setup):
        model, dataset = noisy_setup
        store_dir = tmp_path / "store"
        _crash_after_k_deletions(store_dir, model, dataset, k=8, snapshot_at=4)

        snapshots = ModelStore(store_dir).snapshot_paths()
        assert len(snapshots) == 2
        latest = snapshots[-1]
        latest.write_bytes(latest.read_bytes()[:-40] + b"\x00" * 40)

        uninterrupted = copy.deepcopy(model)
        for row in range(8):
            uninterrupted.unlearn(dataset.record(row), allow_budget_overrun=True)

        recovered = ModelStore(store_dir).recover()
        assert recovered.skipped_snapshots == [latest]
        assert np.array_equal(
            recovered.model.predict_batch(dataset),
            uninterrupted.predict_batch(dataset),
        )

    def test_empty_store_raises(self, tmp_path):
        with pytest.raises(HedgeCutError):
            ModelStore(tmp_path / "empty").recover()

    @pytest.mark.shm
    def test_shm_engine_rematerialises_segments_from_store(
        self, tmp_path, noisy_setup
    ):
        """The shared-memory fleet recovers through the same snapshot +
        WAL-tail protocol: the store's replayed state is re-published into
        fresh segments and the reader processes serve it bit-identically."""
        from repro.serving.shm import ShmReplicatedServingEngine

        model, dataset = noisy_setup
        _crash_after_k_deletions(tmp_path / "store", model, dataset, k=7)

        uninterrupted = copy.deepcopy(model)
        for row in range(7):
            uninterrupted.unlearn(dataset.record(row), allow_budget_overrun=True)

        with ShmReplicatedServingEngine.recover(
            ModelStore(tmp_path / "store"), n_readers=2
        ) as engine:
            assert engine.durable_seq == 7
            assert engine.staleness() == [0, 0]
            assert np.array_equal(
                engine.predict_batch(dataset),
                uninterrupted.predict_batch(dataset),
            )
            assert np.array_equal(
                engine.predict_proba_batch(dataset),
                uninterrupted.predict_proba_batch(dataset),
            )


def _crash_after_batched_campaign(store_dir, model, dataset, ops, snapshot_after=0):
    """Like :func:`_crash_after_k_deletions`, but mixing single-record
    frames with group-committed batch frames. ``ops`` is a list of
    row-index lists: singletons take the single-record path, everything
    else one ``append_batch`` frame plus one batch-kernel apply.
    """
    work = copy.deepcopy(model)
    with ModelStore(store_dir) as store:
        store.save_snapshot(work, wal_seq=0)
        for index, rows in enumerate(ops):
            records = [dataset.record(row) for row in rows]
            if len(records) == 1:
                store.wal.append(
                    records[0], request_id=f"req-{index}", allow_budget_overrun=True
                )
                work.unlearn(records[0], allow_budget_overrun=True)
            else:
                store.wal.append_batch(
                    records,
                    request_ids=[f"req-{index}-{i}" for i in range(len(records))],
                    allow_budget_overrun=True,
                )
                _ = work.packed  # live apply goes through the batch kernel
                work.unlearn_batch(records, allow_budget_overrun=True)
            if snapshot_after and index + 1 == snapshot_after:
                store.save_snapshot(work, wal_seq=store.wal.last_seq)


def _apply_campaign_live(model, dataset, ops):
    applied = copy.deepcopy(model)
    for rows in ops:
        records = [dataset.record(row) for row in rows]
        if len(records) == 1:
            applied.unlearn(records[0], allow_budget_overrun=True)
        else:
            _ = applied.packed
            applied.unlearn_batch(records, allow_budget_overrun=True)
    return applied


class TestBatchFrameRecovery:
    """Replaying group-committed batch frames matches live application."""

    def test_recovered_matches_live_batched_application(self, tmp_path, noisy_setup):
        model, dataset = noisy_setup
        ops = [[0], list(range(1, 9)), [9], list(range(10, 14))]
        _crash_after_batched_campaign(tmp_path / "store", model, dataset, ops)

        uninterrupted = _apply_campaign_live(model, dataset, ops)

        recovered = ModelStore(tmp_path / "store").recover()
        assert recovered.n_replayed == 14
        assert recovered.wal_seq == 14
        assert recovered.model.n_unlearned == uninterrupted.n_unlearned
        assert np.array_equal(
            recovered.model.predict_batch(dataset),
            uninterrupted.predict_batch(dataset),
        )

    def test_snapshot_between_batches_replays_only_the_tail(
        self, tmp_path, noisy_setup
    ):
        model, dataset = noisy_setup
        ops = [list(range(0, 6)), [6], list(range(7, 12))]
        _crash_after_batched_campaign(
            tmp_path / "store", model, dataset, ops, snapshot_after=1
        )

        uninterrupted = _apply_campaign_live(model, dataset, ops)

        recovered = ModelStore(tmp_path / "store").recover()
        # The snapshot at seq 6 absorbs the first batch; replay covers the
        # single at seq 7 plus the five-record batch frame behind it.
        assert recovered.snapshot is not None
        assert recovered.snapshot.wal_seq == 6
        assert recovered.n_replayed == 6
        assert recovered.wal_seq == 12
        assert np.array_equal(
            recovered.model.predict_batch(dataset),
            uninterrupted.predict_batch(dataset),
        )

    def test_recovery_continues_batching_identically(self, tmp_path, noisy_setup):
        """Recover past a batch frame, then keep unlearning in batches."""
        model, dataset = noisy_setup
        ops = [list(range(0, 5))]
        _crash_after_batched_campaign(tmp_path / "store", model, dataset, ops)

        uninterrupted = _apply_campaign_live(model, dataset, ops)
        recovered = ModelStore(tmp_path / "store").recover().model

        tail = [dataset.record(row) for row in range(5, 12)]
        for side in (uninterrupted, recovered):
            _ = side.packed
            side.unlearn_batch(tail, allow_budget_overrun=True)
        assert np.array_equal(
            recovered.predict_batch(dataset), uninterrupted.predict_batch(dataset)
        )


class TestSnapshotHousekeeping:
    def test_snapshots_are_pruned(self, tmp_path, noisy_setup):
        model, dataset = noisy_setup
        work = copy.deepcopy(model)
        with ModelStore(tmp_path / "store", keep_snapshots=2) as store:
            store.save_snapshot(work, wal_seq=0)
            for row in range(6):
                record = dataset.record(row)
                store.wal.append(record, allow_budget_overrun=True)
                work.unlearn(record, allow_budget_overrun=True)
                store.save_snapshot(work)
            assert len(store.snapshot_paths()) == 2

    def test_snapshot_compacts_wal(self, tmp_path, noisy_setup):
        model, dataset = noisy_setup
        work = copy.deepcopy(model)
        with ModelStore(tmp_path / "store") as store:
            for row in range(5):
                record = dataset.record(row)
                store.wal.append(record, allow_budget_overrun=True)
                work.unlearn(record, allow_budget_overrun=True)
            store.save_snapshot(work)
            # Everything up to the snapshot is compacted away.
            assert list(store.wal.records(after_seq=0)) == []
            assert store.wal.last_seq == 5  # sequence numbering continues
