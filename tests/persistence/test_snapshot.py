"""Tests for versioned, checksummed model snapshots."""

import copy
import json

import numpy as np
import pytest

from repro.core.ensemble import HedgeCutClassifier
from repro.core.nodes import MaintenanceNode, iter_nodes
from repro.persistence.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotFormatError,
    SnapshotIntegrityError,
    load_snapshot,
    read_snapshot_info,
    save_snapshot,
)

from tests.conftest import make_random_dataset


@pytest.fixture(scope="module")
def noisy_model_and_data():
    """A model trained with a loose budget so maintenance nodes appear."""
    dataset = make_random_dataset(n_rows=300, seed=11)
    model = HedgeCutClassifier(n_trees=4, epsilon=0.05, seed=5).fit(dataset)
    assert model.node_census().n_maintenance_nodes > 0
    return model, dataset


class TestRoundTrip:
    def test_predictions_identical(self, tmp_path, noisy_model_and_data):
        model, dataset = noisy_model_and_data
        save_snapshot(model, tmp_path / "m.npz")
        restored, info = load_snapshot(tmp_path / "m.npz")
        assert np.array_equal(restored.predict_batch(dataset), model.predict_batch(dataset))
        assert info.n_trees == len(model.trees)

    def test_census_and_counters_identical(self, tmp_path, noisy_model_and_data):
        model, _ = noisy_model_and_data
        save_snapshot(model, tmp_path / "m.npz")
        restored, _ = load_snapshot(tmp_path / "m.npz")
        assert restored.node_census() == model.node_census()
        for original, copy_ in zip(model.trees, restored.trees):
            assert original.counters == copy_.counters

    def test_maintenance_state_preserved(self, tmp_path, noisy_model_and_data):
        model, _ = noisy_model_and_data
        save_snapshot(model, tmp_path / "m.npz")
        restored, _ = load_snapshot(tmp_path / "m.npz")
        originals = [
            node
            for tree in model.trees
            for node in iter_nodes(tree.root)
            if isinstance(node, MaintenanceNode)
        ]
        copies = [
            node
            for tree in restored.trees
            for node in iter_nodes(tree.root)
            if isinstance(node, MaintenanceNode)
        ]
        assert len(originals) == len(copies) > 0
        for original, copy_ in zip(originals, copies):
            assert original.active_index == copy_.active_index
            assert [v.gain for v in original.variants] == [v.gain for v in copy_.variants]
            assert [v.stats for v in original.variants] == [v.stats for v in copy_.variants]

    def test_unlearning_counters_and_schema_preserved(self, tmp_path, noisy_model_and_data):
        model, dataset = noisy_model_and_data
        model = copy.deepcopy(model)
        for row in range(3):
            model.unlearn(dataset.record(row), allow_budget_overrun=True)
        save_snapshot(model, tmp_path / "m.npz", wal_seq=3)
        restored, info = load_snapshot(tmp_path / "m.npz")
        assert restored.n_unlearned == model.n_unlearned == 3
        assert restored.deletion_budget == model.deletion_budget
        assert restored.n_trained_on == model.n_trained_on
        assert restored.schema == model.schema
        assert restored.params == model.params
        assert info.wal_seq == 3

    def test_unlearning_continues_identically_after_restore(
        self, tmp_path, noisy_model_and_data
    ):
        model, dataset = noisy_model_and_data
        original = copy.deepcopy(model)
        save_snapshot(model, tmp_path / "m.npz")
        restored, _ = load_snapshot(tmp_path / "m.npz")
        for row in range(10):
            original.unlearn(dataset.record(row), allow_budget_overrun=True)
            restored.unlearn(dataset.record(row), allow_budget_overrun=True)
        assert np.array_equal(
            restored.predict_batch(dataset), original.predict_batch(dataset)
        )


class TestSafety:
    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(SnapshotFormatError):
            save_snapshot(HedgeCutClassifier(n_trees=2), tmp_path / "m.npz")

    def test_corruption_detected(self, tmp_path, noisy_model_and_data):
        model, _ = noisy_model_and_data
        path = tmp_path / "m.npz"
        save_snapshot(model, path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        # A flipped byte is caught either by the zip/zlib container or by
        # the snapshot checksum -- it must never load silently.
        with pytest.raises(Exception):
            load_snapshot(path)

    def test_tampered_metadata_detected(self, tmp_path, noisy_model_and_data):
        model, _ = noisy_model_and_data
        path = tmp_path / "m.npz"
        save_snapshot(model, path)
        # Rewrite the archive with an edited metadata block but the stored
        # (now stale) checksum: integrity verification must catch it.
        with np.load(path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        meta = json.loads(str(arrays["__meta__"]))
        meta["n_unlearned"] = 999
        arrays["__meta__"] = np.array(json.dumps(meta, sort_keys=True))
        with open(path, "wb") as sink:
            np.savez_compressed(sink, **arrays)
        with pytest.raises(SnapshotIntegrityError):
            load_snapshot(path)

    def test_not_a_snapshot_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez_compressed(path, data=np.arange(3))
        with pytest.raises(SnapshotFormatError):
            load_snapshot(path)

    def test_future_version_rejected(self, tmp_path, noisy_model_and_data):
        model, _ = noisy_model_and_data
        path = tmp_path / "m.npz"
        save_snapshot(model, path)
        with np.load(path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        meta = json.loads(str(arrays["__meta__"]))
        meta["format_version"] = SNAPSHOT_VERSION + 1
        arrays["__meta__"] = np.array(json.dumps(meta, sort_keys=True))
        with open(path, "wb") as sink:
            np.savez_compressed(sink, **arrays)
        with pytest.raises(SnapshotFormatError):
            load_snapshot(path)


class TestInfo:
    def test_read_info_without_decoding(self, tmp_path, noisy_model_and_data):
        model, _ = noisy_model_and_data
        path = tmp_path / "m.npz"
        written = save_snapshot(model, path, wal_seq=17)
        info = read_snapshot_info(path)
        assert info.wal_seq == 17
        assert info.n_trees == len(model.trees)
        assert info.n_nodes == written.n_nodes
        assert info.checksum == written.checksum
        assert info.size_bytes == path.stat().st_size > 0
