"""Property-style test: snapshot -> restore is the identity on predictions.

For every registry dataset (small subsamples), a trained model must
predict bit-for-bit identically after a snapshot/restore round-trip --
probabilities included. A separate case forces maintenance nodes (loose
node budget on noisy data) so the property also covers subtree variants.
"""

import numpy as np
import pytest

from repro.core.ensemble import HedgeCutClassifier
from repro.datasets.registry import available_datasets, load_dataset
from repro.persistence.snapshot import load_snapshot, save_snapshot

from tests.conftest import make_random_dataset


@pytest.mark.parametrize("name", available_datasets())
def test_roundtrip_identity_on_registry_datasets(tmp_path, name):
    dataset = load_dataset(name, n_rows=250, seed=9)
    model = HedgeCutClassifier(n_trees=3, epsilon=0.01, seed=13).fit(dataset)
    save_snapshot(model, tmp_path / f"{name}.npz")
    restored, _ = load_snapshot(tmp_path / f"{name}.npz")

    assert np.array_equal(
        restored.predict_batch(dataset), model.predict_batch(dataset)
    ), f"label mismatch after restore on {name}"
    for row in range(0, dataset.n_rows, 25):
        record = dataset.record(row)
        assert restored.predict_proba(record) == model.predict_proba(record), (
            f"probability mismatch after restore on {name} row {row}"
        )


def test_roundtrip_identity_with_maintenance_nodes(tmp_path):
    dataset = make_random_dataset(n_rows=300, seed=23)
    model = HedgeCutClassifier(n_trees=4, epsilon=0.05, seed=29).fit(dataset)
    assert model.node_census().n_maintenance_nodes > 0, (
        "test setup must produce at least one maintenance node"
    )
    save_snapshot(model, tmp_path / "maint.npz")
    restored, _ = load_snapshot(tmp_path / "maint.npz")
    assert np.array_equal(restored.predict_batch(dataset), model.predict_batch(dataset))
    for row in range(0, dataset.n_rows, 20):
        record = dataset.record(row)
        assert restored.predict_proba(record) == model.predict_proba(record)
