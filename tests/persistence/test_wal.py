"""Tests for the CRC-framed write-ahead deletion log."""

import pytest

from repro.dataprep.dataset import Record
from repro.persistence.wal import DeletionRecord, WalCorruptionError, WriteAheadLog


def _record(seed: int) -> Record:
    return Record(values=(seed % 5, seed % 3, seed % 7), label=seed % 2)


class TestFraming:
    def test_append_read_roundtrip(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            appended = [
                wal.append(_record(i), request_id=f"req-{i}") for i in range(10)
            ]
            assert [entry.seq for entry in appended] == list(range(1, 11))
            read_back = list(wal.records())
        assert read_back == appended
        assert read_back[3].to_record() == _record(3)

    def test_after_seq_filter(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            for i in range(6):
                wal.append(_record(i))
            tail = list(wal.records(after_seq=4))
        assert [entry.seq for entry in tail] == [5, 6]

    def test_sequence_survives_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(_record(0))
            wal.append(_record(1))
        with WriteAheadLog(tmp_path) as wal:
            entry = wal.append(_record(2))
            assert entry.seq == 3
            assert [e.seq for e in wal.records()] == [1, 2, 3]

    def test_budget_overrun_flag_roundtrip(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(_record(0), allow_budget_overrun=True)
            (entry,) = list(wal.records())
        assert entry.allow_budget_overrun is True

    def test_payload_roundtrip_is_exact(self):
        entry = DeletionRecord(
            seq=7, values=(1, 2, 3), label=1, request_id="r", allow_budget_overrun=True
        )
        assert DeletionRecord.from_payload(entry.to_payload()) == entry


class TestCrashTolerance:
    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(_record(0))
            wal.append(_record(1))
            (segment,) = wal.segment_paths()
        # Simulate a crash mid-append: half a frame at the tail.
        with open(segment, "ab") as handle:
            handle.write(b"\x40\x00\x00\x00\xde\xad")
        with WriteAheadLog(tmp_path) as wal:
            assert [e.seq for e in wal.records()] == [1, 2]
            # The torn bytes were reclaimed; appends continue cleanly.
            wal.append(_record(2))
            assert [e.seq for e in wal.records()] == [1, 2, 3]

    def test_corrupt_tail_frame_is_dropped(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(_record(0))
            wal.append(_record(1))
            (segment,) = wal.segment_paths()
        data = bytearray(segment.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte of the final record
        segment.write_bytes(bytes(data))
        with WriteAheadLog(tmp_path) as wal:
            assert [e.seq for e in wal.records()] == [1]

    def test_corrupt_sealed_segment_raises(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(_record(0))
            wal.rotate()
            wal.append(_record(1))
            first = wal.segment_paths()[0]
        data = bytearray(first.read_bytes())
        data[_middle(data)] ^= 0xFF
        first.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(tmp_path)


def _middle(data: bytearray) -> int:
    return len(data) // 2


class TestRotationAndCompaction:
    def test_rotate_starts_new_segment(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(_record(0))
            wal.rotate()
            wal.append(_record(1))
            assert len(wal.segment_paths()) == 2
            assert [e.seq for e in wal.records()] == [1, 2]

    def test_automatic_rotation_by_size(self, tmp_path):
        with WriteAheadLog(tmp_path, max_segment_bytes=64) as wal:
            for i in range(5):
                wal.append(_record(i))
            assert len(wal.segment_paths()) > 1
            assert [e.seq for e in wal.records()] == [1, 2, 3, 4, 5]

    def test_compact_removes_covered_segments(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(_record(0))
            wal.append(_record(1))
            wal.rotate()
            wal.append(_record(2))
            deleted = wal.compact(upto_seq=2)
            assert len(deleted) == 1
            assert [e.seq for e in wal.records()] == [3]

    def test_compact_keeps_uncovered_segments(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(_record(0))
            wal.append(_record(1))
            wal.rotate()
            wal.append(_record(2))
            assert wal.compact(upto_seq=1) == []
            assert [e.seq for e in wal.records()] == [1, 2, 3]

    def test_active_segment_never_deleted(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(_record(0))
            assert wal.compact(upto_seq=10) == []
            assert [e.seq for e in wal.records()] == [1]
