"""Tests for the CRC-framed write-ahead deletion log."""

import pytest

from repro.dataprep.dataset import Record
from repro.persistence.wal import (
    BatchDeletionRecord,
    DeletionRecord,
    WalCorruptionError,
    WriteAheadLog,
)


def _record(seed: int) -> Record:
    return Record(values=(seed % 5, seed % 3, seed % 7), label=seed % 2)


class TestFraming:
    def test_append_read_roundtrip(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            appended = [
                wal.append(_record(i), request_id=f"req-{i}") for i in range(10)
            ]
            assert [entry.seq for entry in appended] == list(range(1, 11))
            read_back = list(wal.records())
        assert read_back == appended
        assert read_back[3].to_record() == _record(3)

    def test_after_seq_filter(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            for i in range(6):
                wal.append(_record(i))
            tail = list(wal.records(after_seq=4))
        assert [entry.seq for entry in tail] == [5, 6]

    def test_sequence_survives_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(_record(0))
            wal.append(_record(1))
        with WriteAheadLog(tmp_path) as wal:
            entry = wal.append(_record(2))
            assert entry.seq == 3
            assert [e.seq for e in wal.records()] == [1, 2, 3]

    def test_budget_overrun_flag_roundtrip(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(_record(0), allow_budget_overrun=True)
            (entry,) = list(wal.records())
        assert entry.allow_budget_overrun is True

    def test_payload_roundtrip_is_exact(self):
        entry = DeletionRecord(
            seq=7, values=(1, 2, 3), label=1, request_id="r", allow_budget_overrun=True
        )
        assert DeletionRecord.from_payload(entry.to_payload()) == entry


class TestBatchFrames:
    def test_append_batch_roundtrip(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            batch = wal.append_batch(
                [_record(i) for i in range(4)],
                request_ids=[f"req-{i}" for i in range(4)],
            )
            assert [entry.seq for entry in batch.records] == [1, 2, 3, 4]
            (frame,) = list(wal.frames())
        assert isinstance(frame, BatchDeletionRecord)
        assert frame == batch
        assert frame.records[2].request_id == "req-2"
        assert frame.records[2].to_record() == _record(2)

    def test_records_flattens_batches_in_order(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(_record(0))
            wal.append_batch([_record(1), _record(2)])
            wal.append(_record(3))
            assert [e.seq for e in wal.records()] == [1, 2, 3, 4]
            assert [e.seq for e in wal.records(after_seq=2)] == [3, 4]

    def test_straddling_batch_yields_whole_frame(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(_record(0))
            wal.append_batch([_record(1), _record(2), _record(3)])
            (frame,) = list(wal.frames(after_seq=2))
            # Replay sees the whole frame (atomicity) ...
            assert (frame.first_seq, frame.last_seq) == (2, 4)
            # ... while the flattened view filters covered members.
            assert [e.seq for e in wal.records(after_seq=2)] == [3, 4]

    def test_torn_batch_frame_vanishes_whole(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(_record(0))
            wal.append_batch([_record(1), _record(2), _record(3)])
            (segment,) = wal.segment_paths()
        data = bytearray(segment.read_bytes())
        data[-1] ^= 0xFF  # corrupt the group-committed frame's tail
        segment.write_bytes(bytes(data))
        with WriteAheadLog(tmp_path) as wal:
            # Crash-wise the batch is all-or-nothing: no partial batch.
            assert [e.seq for e in wal.records()] == [1]
            assert wal.append(_record(4)).seq == 2

    def test_sequence_survives_reopen_after_batch(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append_batch([_record(0), _record(1), _record(2)])
        with WriteAheadLog(tmp_path) as wal:
            assert wal.append(_record(3)).seq == 4

    def test_overrun_flag_applies_to_every_member(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append_batch([_record(0), _record(1)], allow_budget_overrun=True)
            assert all(e.allow_budget_overrun for e in wal.records())

    def test_rejects_empty_batch_and_mismatched_ids(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            with pytest.raises(ValueError):
                wal.append_batch([])
            with pytest.raises(ValueError):
                wal.append_batch([_record(0)], request_ids=["a", "b"])
            assert wal.last_seq == 0

    def test_batch_payload_roundtrip_is_exact(self):
        batch = BatchDeletionRecord(
            records=(
                DeletionRecord(seq=3, values=(1, 2), label=0, request_id="a"),
                DeletionRecord(
                    seq=4, values=(2, 1), label=1, allow_budget_overrun=True
                ),
            )
        )
        assert BatchDeletionRecord.from_payload(batch.to_payload()) == batch

    def test_empty_batch_record_rejected(self):
        with pytest.raises(ValueError):
            BatchDeletionRecord(records=())


class TestCrashTolerance:
    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(_record(0))
            wal.append(_record(1))
            (segment,) = wal.segment_paths()
        # Simulate a crash mid-append: half a frame at the tail.
        with open(segment, "ab") as handle:
            handle.write(b"\x40\x00\x00\x00\xde\xad")
        with WriteAheadLog(tmp_path) as wal:
            assert [e.seq for e in wal.records()] == [1, 2]
            # The torn bytes were reclaimed; appends continue cleanly.
            wal.append(_record(2))
            assert [e.seq for e in wal.records()] == [1, 2, 3]

    def test_corrupt_tail_frame_is_dropped(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(_record(0))
            wal.append(_record(1))
            (segment,) = wal.segment_paths()
        data = bytearray(segment.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte of the final record
        segment.write_bytes(bytes(data))
        with WriteAheadLog(tmp_path) as wal:
            assert [e.seq for e in wal.records()] == [1]

    def test_corrupt_sealed_segment_raises(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(_record(0))
            wal.rotate()
            wal.append(_record(1))
            first = wal.segment_paths()[0]
        data = bytearray(first.read_bytes())
        data[_middle(data)] ^= 0xFF
        first.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(tmp_path)


def _middle(data: bytearray) -> int:
    return len(data) // 2


class TestRotationAndCompaction:
    def test_rotate_starts_new_segment(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(_record(0))
            wal.rotate()
            wal.append(_record(1))
            assert len(wal.segment_paths()) == 2
            assert [e.seq for e in wal.records()] == [1, 2]

    def test_automatic_rotation_by_size(self, tmp_path):
        with WriteAheadLog(tmp_path, max_segment_bytes=64) as wal:
            for i in range(5):
                wal.append(_record(i))
            assert len(wal.segment_paths()) > 1
            assert [e.seq for e in wal.records()] == [1, 2, 3, 4, 5]

    def test_compact_removes_covered_segments(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(_record(0))
            wal.append(_record(1))
            wal.rotate()
            wal.append(_record(2))
            deleted = wal.compact(upto_seq=2)
            assert len(deleted) == 1
            assert [e.seq for e in wal.records()] == [3]

    def test_compact_keeps_uncovered_segments(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(_record(0))
            wal.append(_record(1))
            wal.rotate()
            wal.append(_record(2))
            assert wal.compact(upto_seq=1) == []
            assert [e.seq for e in wal.records()] == [1, 2, 3]

    def test_active_segment_never_deleted(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append(_record(0))
            assert wal.compact(upto_seq=10) == []
            assert [e.seq for e in wal.records()] == [1]
