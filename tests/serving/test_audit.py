"""Tests for the unlearning audit log."""

import pytest

from repro.core.exceptions import DeletionBudgetExhausted
from repro.dataprep.dataset import Record
from repro.serving.audit import AuditedUnlearner, AuditEntry


class TestAuditEntry:
    def test_json_roundtrip(self):
        entry = AuditEntry(
            request_id="req-1",
            timestamp=123.0,
            succeeded=True,
            latency_us=42.0,
            leaves_updated=5,
            variant_switches=1,
        )
        assert AuditEntry.from_json(entry.to_json()) == entry

    def test_json_roundtrip_with_log_offset(self):
        entry = AuditEntry(
            request_id="req-1",
            timestamp=123.0,
            succeeded=True,
            latency_us=42.0,
            log_offset=17,
        )
        assert AuditEntry.from_json(entry.to_json()).log_offset == 17

    def test_legacy_entries_without_log_offset_still_parse(self):
        legacy = (
            '{"error": null, "latency_us": 1.0, "leaves_updated": 2, '
            '"request_id": "old", "succeeded": true, "timestamp": 1.0, '
            '"variant_switches": 0}'
        )
        entry = AuditEntry.from_json(legacy)
        assert entry.log_offset is None


class TestAuditedUnlearner:
    def test_successful_request_is_recorded(self, fitted_model, income_split):
        train, _ = income_split
        audited = AuditedUnlearner(fitted_model)
        entry = audited.unlearn("req-1", train.record(0))
        assert entry.succeeded
        assert entry.leaves_updated >= len(fitted_model.trees)
        assert audited.n_succeeded == 1
        assert audited.n_failed == 0
        assert audited.evidence_for("req-1") is entry

    def test_failed_request_is_recorded_not_raised(self, fitted_model):
        audited = AuditedUnlearner(fitted_model)
        bad = Record(values=(0,), label=0)  # wrong arity
        entry = audited.unlearn("req-bad", bad)
        assert not entry.succeeded
        assert entry.error is not None
        assert audited.n_failed == 1
        assert list(audited.failures()) == [entry]

    def test_strict_mode_reraises(self, fitted_model, income_split):
        train, _ = income_split
        audited = AuditedUnlearner(fitted_model, strict=True)
        for row in range(fitted_model.deletion_budget):
            audited.unlearn(f"req-{row}", train.record(row))
        with pytest.raises(DeletionBudgetExhausted):
            audited.unlearn("req-over", train.record(fitted_model.deletion_budget))
        # The failure is still recorded before re-raising.
        assert not audited.evidence_for("req-over").succeeded

    def test_unknown_request_lookup(self, fitted_model):
        audited = AuditedUnlearner(fitted_model)
        with pytest.raises(KeyError):
            audited.evidence_for("nope")

    def test_log_persistence(self, tmp_path, fitted_model, income_split):
        train, _ = income_split
        audited = AuditedUnlearner(fitted_model)
        audited.unlearn("req-1", train.record(0))
        audited.unlearn("req-2", Record(values=(0,), label=0))
        path = tmp_path / "audit.jsonl"
        audited.write_log(path)
        restored = AuditedUnlearner.read_log(path)
        assert [entry.request_id for entry in restored] == ["req-1", "req-2"]
        assert restored[0].succeeded and not restored[1].succeeded
