"""Tests for the replicated, crash-recoverable serving engine."""

import copy

import numpy as np
import pytest

from repro.core.ensemble import HedgeCutClassifier
from repro.persistence.store import ModelStore
from repro.serving.audit import AuditedUnlearner
from repro.serving.engine import ReplicatedServingEngine

from tests.conftest import make_random_dataset


@pytest.fixture(scope="module")
def dataset():
    return make_random_dataset(n_rows=300, seed=11)


@pytest.fixture()
def model(dataset):
    return HedgeCutClassifier(n_trees=4, epsilon=0.05, seed=5).fit(dataset)


def _engine(tmp_path, model, **kwargs):
    return ReplicatedServingEngine(model, ModelStore(tmp_path / "store"), **kwargs)


class TestConstruction:
    def test_rejects_bad_arguments(self, tmp_path, model):
        with pytest.raises(ValueError):
            _engine(tmp_path, model, n_replicas=0)
        with pytest.raises(ValueError):
            _engine(tmp_path, model, consistency="quantum")

    def test_replicas_start_in_sync(self, tmp_path, model):
        engine = _engine(tmp_path, model, n_replicas=3)
        assert engine.n_replicas == 3
        assert engine.staleness() == [0, 0, 0]


class TestStrongConsistency:
    def test_deletions_reach_every_replica(self, tmp_path, model, dataset):
        reference = copy.deepcopy(model)
        engine = _engine(tmp_path, model, n_replicas=3, consistency="strong")
        for row in range(6):
            entry = engine.unlearn(f"req-{row}", dataset.record(row),
                                   allow_budget_overrun=True)
            assert entry.succeeded
            reference.unlearn(dataset.record(row), allow_budget_overrun=True)
        assert engine.staleness() == [0, 0, 0]
        expected = reference.predict_batch(dataset)
        # Every replica (cycled through by round-robin) answers identically.
        for _ in range(3):
            assert np.array_equal(engine.predict_batch(dataset), expected)

    def test_round_robin_cycles_replicas(self, tmp_path, model, dataset):
        engine = _engine(tmp_path, model, n_replicas=2)
        record = dataset.record(0)
        predictions = {engine.predict(record) for _ in range(4)}
        assert len(predictions) == 1  # replicas agree; cursor still cycles


class TestReadYourDeletes:
    def test_reads_observe_acknowledged_deletions(self, tmp_path, model, dataset):
        reference = copy.deepcopy(model)
        engine = _engine(
            tmp_path, model, n_replicas=3, consistency="read_your_deletes"
        )
        for row in range(8):
            engine.unlearn(f"req-{row}", dataset.record(row), allow_budget_overrun=True)
            reference.unlearn(dataset.record(row), allow_budget_overrun=True)
        # Secondary replicas are stale until they serve a read.
        assert engine.staleness()[1:] == [8, 8]
        expected = reference.predict_batch(dataset)
        for _ in range(3):
            assert np.array_equal(engine.predict_batch(dataset), expected)
        assert engine.staleness() == [0, 0, 0]


class TestEventualConsistency:
    def test_staleness_grows_then_sync_catches_up(self, tmp_path, model, dataset):
        engine = _engine(tmp_path, model, n_replicas=2, consistency="eventual")
        for row in range(5):
            engine.unlearn(f"req-{row}", dataset.record(row), allow_budget_overrun=True)
        assert engine.staleness() == [0, 5]
        engine.sync()
        assert engine.staleness() == [0, 0]
        expected = engine.primary.predict_batch(dataset)
        for _ in range(2):
            assert np.array_equal(engine.predict_batch(dataset), expected)


class TestAuditTrail:
    def test_every_deletion_gets_an_entry_with_log_offset(
        self, tmp_path, model, dataset
    ):
        engine = _engine(tmp_path, model)
        for row in range(5):
            engine.unlearn(f"req-{row}", dataset.record(row), allow_budget_overrun=True)
        assert len(engine.audit_entries) == 5
        assert [entry.log_offset for entry in engine.audit_entries] == [1, 2, 3, 4, 5]
        assert engine.evidence_for("req-3").log_offset == 4

    def test_audit_log_survives_snapshot_recover_roundtrip(
        self, tmp_path, model, dataset
    ):
        engine = _engine(tmp_path, model)
        for row in range(4):
            engine.unlearn(f"req-{row}", dataset.record(row), allow_budget_overrun=True)
        engine.snapshot()
        engine.write_audit_log(tmp_path / "audit.jsonl")
        engine.close()

        # Restart from durable state only.
        recovered = ReplicatedServingEngine.recover(
            ModelStore(tmp_path / "store"), n_replicas=2
        )
        entries = AuditedUnlearner.read_log(tmp_path / "audit.jsonl")
        assert [entry.request_id for entry in entries] == [f"req-{i}" for i in range(4)]
        assert all(entry.succeeded for entry in entries)
        # Audit offsets still index into the recovered durable state.
        assert entries[-1].log_offset == 4
        assert recovered.primary.n_unlearned == 4
        # New deletions continue the durable sequence after the offsets in
        # the persisted audit trail.
        entry = recovered.unlearn("req-4", dataset.record(4), allow_budget_overrun=True)
        assert entry.log_offset == 5

    def test_failed_request_is_audited_with_offset(self, tmp_path, model, dataset):
        engine = _engine(tmp_path, model)
        budget = model.deletion_budget
        for row in range(budget):
            engine.unlearn(f"req-{row}", dataset.record(row))
        entry = engine.unlearn("req-over", dataset.record(budget))
        assert not entry.succeeded
        assert entry.log_offset == budget + 1  # logged before it failed


class TestBatchUnlearning:
    def test_batch_reaches_every_replica_atomically(self, tmp_path, model, dataset):
        reference = copy.deepcopy(model)
        engine = _engine(tmp_path, model, n_replicas=3, consistency="strong")
        records = [dataset.record(row) for row in range(8)]
        entry = engine.unlearn_batch(
            "req-batch",
            records,
            allow_budget_overrun=True,
            record_request_ids=[f"req-{row}" for row in range(8)],
        )
        assert entry.succeeded
        assert entry.n_records == 8
        assert entry.log_offset == 1  # the batch's first durable seq
        assert engine.durable_seq == 8
        assert engine.staleness() == [0, 0, 0]
        _ = reference.packed
        reference.unlearn_batch(records, allow_budget_overrun=True)
        expected = reference.predict_batch(dataset)
        for _ in range(3):
            assert np.array_equal(engine.predict_batch(dataset), expected)

    def test_batch_is_one_wal_frame(self, tmp_path, model, dataset):
        engine = _engine(tmp_path, model)
        engine.unlearn_batch(
            "req-batch",
            [dataset.record(row) for row in range(5)],
            allow_budget_overrun=True,
        )
        frames = list(engine.store.wal.frames())
        assert len(frames) == 1  # group commit: one frame for the batch
        assert (frames[0].first_seq, frames[0].last_seq) == (1, 5)

    def test_eventual_batch_staleness_then_sync(self, tmp_path, model, dataset):
        engine = _engine(tmp_path, model, n_replicas=2, consistency="eventual")
        records = [dataset.record(row) for row in range(5)]
        engine.unlearn_batch("req-batch", records, allow_budget_overrun=True)
        assert engine.staleness() == [0, 5]
        engine.sync()
        assert engine.staleness() == [0, 0]
        expected = engine.primary.predict_batch(dataset)
        for _ in range(2):
            assert np.array_equal(engine.predict_batch(dataset), expected)

    def test_batch_and_single_offsets_interleave(self, tmp_path, model, dataset):
        engine = _engine(tmp_path, model, n_replicas=2)
        first = engine.unlearn("req-0", dataset.record(0), allow_budget_overrun=True)
        batch = engine.unlearn_batch(
            "req-batch",
            [dataset.record(1), dataset.record(2), dataset.record(3)],
            allow_budget_overrun=True,
        )
        last = engine.unlearn("req-4", dataset.record(4), allow_budget_overrun=True)
        assert (first.log_offset, batch.log_offset, last.log_offset) == (1, 2, 5)
        assert batch.n_records == 3
        assert engine.staleness() == [0, 0]

    def test_recover_after_kill_with_batch_frames(self, tmp_path, model, dataset):
        reference = copy.deepcopy(model)
        engine = _engine(tmp_path, model, n_replicas=2)
        engine.snapshot()
        engine.unlearn("req-0", dataset.record(0), allow_budget_overrun=True)
        records = [dataset.record(row) for row in range(1, 9)]
        engine.unlearn_batch("req-batch", records, allow_budget_overrun=True)
        engine.close()  # crash: no final snapshot

        reference.unlearn(dataset.record(0), allow_budget_overrun=True)
        _ = reference.packed
        reference.unlearn_batch(records, allow_budget_overrun=True)

        recovered = ReplicatedServingEngine.recover(
            ModelStore(tmp_path / "store"), n_replicas=2
        )
        assert recovered.staleness() == [0, 0]
        assert np.array_equal(
            recovered.predict_batch(dataset), reference.predict_batch(dataset)
        )


class TestCrashRecovery:
    def test_recover_after_kill(self, tmp_path, model, dataset):
        reference = copy.deepcopy(model)
        engine = _engine(tmp_path, model, n_replicas=2)
        engine.snapshot()
        for row in range(7):
            engine.unlearn(f"req-{row}", dataset.record(row), allow_budget_overrun=True)
            reference.unlearn(dataset.record(row), allow_budget_overrun=True)
        engine.close()  # crash: no final snapshot

        recovered = ReplicatedServingEngine.recover(
            ModelStore(tmp_path / "store"), n_replicas=2
        )
        assert recovered.staleness() == [0, 0]
        assert np.array_equal(
            recovered.predict_batch(dataset), reference.predict_batch(dataset)
        )

    def test_snapshot_then_recover_replays_nothing(self, tmp_path, model, dataset):
        engine = _engine(tmp_path, model)
        for row in range(3):
            engine.unlearn(f"req-{row}", dataset.record(row), allow_budget_overrun=True)
        engine.snapshot()
        engine.close()

        store = ModelStore(tmp_path / "store")
        recovered = store.recover()
        assert recovered.n_replayed == 0
        assert recovered.model.n_unlearned == 3
