"""Tests for the micro-batching front end of the replicated engine."""

import copy

import numpy as np
import pytest

from repro.core.ensemble import HedgeCutClassifier
from repro.persistence.store import ModelStore
from repro.serving.engine import ReplicatedServingEngine
from repro.serving.microbatch import (
    FLUSH_FORCED,
    FLUSH_FULL,
    FLUSH_WINDOW,
    MicroBatchConfig,
    MicroBatcher,
)

from tests.conftest import make_random_dataset


class FakeClock:
    """Deterministic clock; tests advance it explicitly (seconds)."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def dataset():
    return make_random_dataset(n_rows=300, seed=11)


@pytest.fixture()
def model(dataset):
    return HedgeCutClassifier(n_trees=4, epsilon=0.05, seed=5).fit(dataset)


@pytest.fixture()
def engine(tmp_path, model):
    return ReplicatedServingEngine(model, ModelStore(tmp_path / "store"), n_replicas=2)


def _batcher(engine, max_batch=4, max_delay_ms=5.0, clock=None):
    config = MicroBatchConfig(max_batch=max_batch, max_delay_ms=max_delay_ms)
    return MicroBatcher(engine, config, clock=clock or FakeClock())


class TestConfig:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            MicroBatchConfig(max_batch=0)
        with pytest.raises(ValueError):
            MicroBatchConfig(max_delay_ms=-1.0)


class TestFlushTriggers:
    def test_full_batch_dispatches_immediately(self, engine, dataset):
        batcher = _batcher(engine, max_batch=3)
        handles = [batcher.submit_predict(dataset.record(row)) for row in range(3)]
        assert all(handle.done for handle in handles)
        assert batcher.n_queued == 0
        assert batcher.stats.flush_reasons[FLUSH_FULL] == 1

    def test_window_expiry_dispatches(self, engine, dataset):
        clock = FakeClock()
        batcher = _batcher(engine, max_batch=100, max_delay_ms=2.0, clock=clock)
        first = batcher.submit_predict(dataset.record(0))
        assert not first.done
        clock.advance(0.0025)  # 2.5 ms > the 2 ms window
        second = batcher.submit_predict(dataset.record(1))
        assert first.done and second.done
        assert batcher.stats.flush_reasons[FLUSH_WINDOW] == 1

    def test_result_forces_flush(self, engine, dataset):
        batcher = _batcher(engine, max_batch=100)
        handle = batcher.submit_predict(dataset.record(0))
        assert not handle.done
        label = handle.result()
        assert handle.done
        assert label in (0, 1)
        assert batcher.stats.flush_reasons[FLUSH_FORCED] == 1

    def test_flush_on_empty_queue_is_noop(self, engine):
        batcher = _batcher(engine)
        assert batcher.flush() == 0
        assert batcher.stats.n_batches == 0


class TestCorrectness:
    def test_batched_labels_match_single_record_path(self, engine, dataset):
        batcher = _batcher(engine, max_batch=8)
        rows = list(range(40))
        handles = [batcher.submit_predict(dataset.record(row)) for row in rows]
        batcher.flush()
        expected = engine.primary.predict_batch(dataset.take(np.asarray(rows)))
        assert [handle.result() for handle in handles] == expected.tolist()

    def test_unlearn_flushes_queued_predictions_first(self, engine, dataset):
        batcher = _batcher(engine, max_batch=100)
        handles = [batcher.submit_predict(dataset.record(row)) for row in range(5)]
        entry = batcher.unlearn("req-1", dataset.record(0), allow_budget_overrun=True)
        assert entry.succeeded
        assert all(handle.done for handle in handles)
        assert batcher.n_queued == 0
        assert batcher.stats.flush_reasons[FLUSH_FORCED] == 1

    def test_accepts_raw_value_sequences(self, engine, dataset):
        batcher = _batcher(engine, max_batch=2)
        record = dataset.record(3)
        by_record = batcher.submit_predict(record)
        by_values = batcher.submit_predict(record.values)
        assert by_record.result() == by_values.result()


class TestUnlearnCoalescing:
    def test_full_window_group_commits_once(self, engine, dataset):
        batcher = _batcher(engine, max_batch=3)
        handles = [
            batcher.submit_unlearn(
                f"req-{row}", dataset.record(row), allow_budget_overrun=True
            )
            for row in range(3)
        ]
        assert all(handle.done for handle in handles)
        entry = handles[0].result()
        assert entry.succeeded
        assert entry.n_records == 3
        # Every member of the coalesced batch shares one audit entry.
        assert all(handle.result() is entry for handle in handles)
        # One group-committed WAL frame covering three sequence numbers.
        frames = list(engine.store.wal.frames())
        assert len(frames) == 1
        assert engine.durable_seq == 3
        assert batcher.stats.n_unlearn_batches == 1
        assert batcher.stats.unlearn_batch_sizes == [3]
        assert batcher.stats.flush_reasons[FLUSH_FULL] == 1

    def test_window_expiry_dispatches_unlearns(self, engine, dataset):
        clock = FakeClock()
        batcher = _batcher(engine, max_batch=100, max_delay_ms=2.0, clock=clock)
        first = batcher.submit_unlearn(
            "req-0", dataset.record(0), allow_budget_overrun=True
        )
        assert not first.done
        clock.advance(0.0025)  # 2.5 ms > the 2 ms window
        second = batcher.submit_unlearn(
            "req-1", dataset.record(1), allow_budget_overrun=True
        )
        assert first.done and second.done
        assert batcher.stats.flush_reasons[FLUSH_WINDOW] == 1
        assert batcher.stats.mean_unlearn_batch_size == 2.0

    def test_result_forces_group_commit(self, engine, dataset):
        batcher = _batcher(engine, max_batch=100)
        handle = batcher.submit_unlearn(
            "req-0", dataset.record(0), allow_budget_overrun=True
        )
        assert not handle.done
        entry = handle.result()
        assert entry.succeeded and entry.n_records == 1
        assert batcher.stats.flush_reasons[FLUSH_FORCED] == 1

    def test_predictions_before_deletion_never_observe_it(self, engine, dataset):
        batcher = _batcher(engine, max_batch=100)
        before = engine.primary.predict_batch(dataset.take(np.arange(5)))
        handles = [batcher.submit_predict(dataset.record(row)) for row in range(5)]
        batcher.submit_unlearn("req-0", dataset.record(0), allow_budget_overrun=True)
        # The deletion arrival flushed the prediction queue first; the
        # deletion itself is still coalescing.
        assert all(handle.done for handle in handles)
        assert batcher.n_queued_unlearns == 1
        assert [handle.result() for handle in handles] == before.tolist()

    def test_prediction_after_deletion_observes_it(self, engine, dataset):
        batcher = _batcher(engine, max_batch=100)
        handle = batcher.submit_unlearn(
            "req-0", dataset.record(0), allow_budget_overrun=True
        )
        prediction = batcher.submit_predict(dataset.record(0))
        # The prediction arrival flushed the queued deletion first.
        assert handle.done
        assert batcher.n_queued_unlearns == 0
        assert prediction.result() == engine.primary.predict(dataset.record(0))

    def test_overrun_flag_change_closes_window(self, engine, dataset):
        batcher = _batcher(engine, max_batch=100)
        first = batcher.submit_unlearn(
            "req-0", dataset.record(0), allow_budget_overrun=True
        )
        second = batcher.submit_unlearn("req-1", dataset.record(1))
        # One WAL frame carries one flag: the flag flip dispatched the
        # open window and started a fresh one.
        assert first.done and not second.done
        assert first.result().n_records == 1
        assert batcher.n_queued_unlearns == 1

    def test_synchronous_unlearn_flushes_queued_deletions_first(
        self, engine, dataset
    ):
        batcher = _batcher(engine, max_batch=100)
        queued = batcher.submit_unlearn(
            "req-0", dataset.record(0), allow_budget_overrun=True
        )
        entry = batcher.unlearn("req-1", dataset.record(1), allow_budget_overrun=True)
        assert queued.done
        assert queued.result().log_offset == 1
        assert entry.log_offset == 2  # queued deletion landed first

    def test_coalesced_deletions_match_direct_batch(self, tmp_path, model, dataset):
        reference = copy.deepcopy(model)
        engine = ReplicatedServingEngine(
            model, ModelStore(tmp_path / "store"), n_replicas=2
        )
        batcher = _batcher(engine, max_batch=4)
        for row in range(8):
            batcher.submit_unlearn(
                f"req-{row}", dataset.record(row), allow_budget_overrun=True
            )
        batcher.flush_unlearns()
        _ = reference.packed
        reference.unlearn_batch(
            [dataset.record(row) for row in range(8)], allow_budget_overrun=True
        )
        assert batcher.stats.n_unlearn_requests == 8
        assert batcher.stats.unlearn_batch_sizes == [4, 4]
        expected = reference.predict_batch(dataset)
        for _ in range(2):
            assert np.array_equal(engine.predict_batch(dataset), expected)


class TestDeferredWindowing:
    """``flush_on_unlearn=False``: both queues open, serial order kept."""

    def test_deletion_queues_without_closing_prediction_window(
        self, engine, dataset
    ):
        batcher = _batcher(engine, max_batch=100)
        batcher.flush_on_unlearn = False
        prediction = batcher.submit_predict(dataset.record(3))
        deletion = batcher.submit_unlearn(
            "req-0", dataset.record(0), allow_budget_overrun=True
        )
        # Both windows stay open -- the whole point of the mode.
        assert not prediction.done and not deletion.done
        assert batcher.n_queued == 1 and batcher.n_queued_unlearns == 1

    def test_unlearn_dispatch_drains_prediction_window_first(
        self, engine, dataset
    ):
        batcher = _batcher(engine, max_batch=100)
        batcher.flush_on_unlearn = False
        before = engine.primary.predict_batch(dataset.take(np.arange(5)))
        handles = [batcher.submit_predict(dataset.record(row)) for row in range(5)]
        batcher.submit_unlearn("req-0", dataset.record(0), allow_budget_overrun=True)
        batcher.flush_unlearns()
        # Queued predictions predate the queued deletion and must answer
        # from pre-deletion state even though they dispatched later.
        assert [handle.result() for handle in handles] == before.tolist()

    def test_interleaved_equals_serial_replay(self, tmp_path, model, dataset):
        """Property: any predict/delete interleaving == serial submission."""
        reference = copy.deepcopy(model)
        engine = ReplicatedServingEngine(
            model, ModelStore(tmp_path / "store"), n_replicas=2
        )
        batcher = _batcher(engine, max_batch=100)
        batcher.flush_on_unlearn = False
        rng = np.random.default_rng(29)
        serial_answers = []
        batched_handles = []
        deleted = 0
        for step in range(60):
            if rng.random() < 0.3 and deleted < 15:
                record = dataset.record(deleted)
                batcher.submit_unlearn(
                    f"req-{deleted}", record, allow_budget_overrun=True
                )
                reference.unlearn(record, allow_budget_overrun=True)
                deleted += 1
            else:
                row = int(rng.integers(0, dataset.n_rows))
                # Serial twin answers immediately, in submission order.
                serial_answers.append(reference.predict(dataset.record(row)))
                batched_handles.append(batcher.submit_predict(dataset.record(row)))
        batcher.flush_unlearns()
        batcher.flush()
        assert [handle.result() for handle in batched_handles] == serial_answers
        expected = reference.predict_batch(dataset)
        assert np.array_equal(engine.predict_batch(dataset), expected)


class TestStats:
    def test_dispatch_accounting(self, engine, dataset):
        # Real clock here: the throughput figure needs nonzero elapsed time.
        batcher = MicroBatcher(engine, MicroBatchConfig(max_batch=4))
        for row in range(10):
            batcher.submit_predict(dataset.record(row))
        batcher.flush()
        stats = batcher.stats
        assert stats.n_requests == 10
        assert stats.n_batches == 3  # 4 + 4 + forced 2
        assert stats.batch_sizes == [4, 4, 2]
        assert stats.mean_batch_size == pytest.approx(10 / 3)
        assert stats.rows_per_second > 0
