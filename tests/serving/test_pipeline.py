"""Tests for the heavyweight retrain-and-redeploy pipeline simulator."""

import numpy as np
import pytest

from repro.baselines.cart import DecisionTreeClassifier
from repro.serving.pipeline import (
    DeploymentReport,
    ModelRegistry,
    PipelineCosts,
    RetrainingPipeline,
    StageTiming,
)

from tests.conftest import make_random_dataset


@pytest.fixture()
def data():
    dataset = make_random_dataset(n_rows=300, seed=41)
    return dataset.take(np.arange(240)), dataset.take(np.arange(240, 300))


def make_pipeline(**kwargs):
    return RetrainingPipeline(
        model_factory=lambda: DecisionTreeClassifier(min_samples_leaf=5),
        costs=PipelineCosts(simulate_delays=False),
        **kwargs,
    )


class TestRegistry:
    def test_empty_registry_has_no_current(self):
        with pytest.raises(LookupError):
            _ = ModelRegistry().current

    def test_push_and_rollback(self):
        registry = ModelRegistry()
        registry.push(model=object(), validation_accuracy=0.8)
        registry.push(model=object(), validation_accuracy=0.9)
        assert registry.current.version == 2
        registry.rollback()
        assert registry.current.version == 1
        with pytest.raises(LookupError):
            registry.rollback()

    def test_history_is_ordered(self):
        registry = ModelRegistry()
        registry.push(object(), 0.7)
        registry.push(object(), 0.8)
        assert [version.version for version in registry.history()] == [1, 2]


class TestPipelineRun:
    def test_runs_all_five_stages(self, data):
        train, validation = data
        pipeline = make_pipeline()
        report = pipeline.run(train, validation)
        stages = [timing.stage for timing in report.timings]
        assert stages == [
            "provisioning",
            "data loading",
            "retraining",
            "validation",
            "canary",
            "traffic switch",
        ]
        assert pipeline.registry.n_versions == 1
        assert report.canary_accuracy is not None

    def test_retraining_is_measured_not_simulated(self, data):
        train, validation = data
        report = make_pipeline().run(train, validation)
        retraining = next(t for t in report.timings if t.stage == "retraining")
        assert not retraining.simulated
        assert retraining.seconds > 0

    def test_operational_costs_dominate(self, data):
        """The Figure 1 point: the pipeline overhead dwarfs the training."""
        train, validation = data
        report = make_pipeline().run(train, validation)
        operational = sum(t.seconds for t in report.timings if t.simulated)
        assert operational > 10 * report.stage_seconds("retraining")

    def test_data_loading_scales_with_rows(self, data):
        train, validation = data
        report = make_pipeline().run(train, validation)
        expected = PipelineCosts().data_loading_s_per_million_rows * (
            train.n_rows / 1e6
        )
        assert report.stage_seconds("data loading") == pytest.approx(expected)

    def test_deletion_request_retrains_on_reduced_data(self, data):
        train, validation = data
        pipeline = make_pipeline()
        report = pipeline.serve_deletion_request(train, validation, removed_rows=[0, 1])
        assert report.total_seconds > 0
        assert pipeline.registry.n_versions == 1

    def test_format_summary_lists_stages(self, data):
        train, validation = data
        report = make_pipeline().run(train, validation)
        summary = report.format_summary()
        assert "provisioning" in summary
        assert "total" in summary


class TestCanaryRollback:
    def test_rollback_on_degraded_model(self, data):
        train, validation = data
        pipeline = make_pipeline(canary_tolerance=0.0)
        first = pipeline.run(train, validation)
        assert not first.rolled_back

        # A constant classifier that will certainly be worse.
        class Constant:
            def fit(self, dataset):
                return self

            def predict_batch(self, dataset):
                return np.zeros(dataset.n_rows, dtype=np.uint8)

        bad_pipeline = RetrainingPipeline(
            model_factory=Constant,
            registry=pipeline.registry,
            costs=PipelineCosts(simulate_delays=False),
            canary_tolerance=0.01,
        )
        second = bad_pipeline.run(train, validation)
        assert second.rolled_back
        # Registry keeps serving the previous good version.
        assert pipeline.registry.n_versions == 1
        assert "rolled back" in second.format_summary()

    def test_stage_seconds_unknown_stage(self):
        report = DeploymentReport(version=1, timings=[StageTiming("x", 1.0, True)])
        with pytest.raises(KeyError):
            report.stage_seconds("y")


class TestSnapshotStage:
    def test_deployment_is_snapshotted_into_store(self, data, tmp_path):
        from repro.core.ensemble import HedgeCutClassifier
        from repro.persistence.store import ModelStore

        train, validation = data
        store = ModelStore(tmp_path / "store")
        pipeline = RetrainingPipeline(
            model_factory=lambda: HedgeCutClassifier(n_trees=2, seed=3),
            costs=PipelineCosts(simulate_delays=False),
            store=store,
        )
        report = pipeline.run(train, validation)
        assert not report.rolled_back
        assert report.timings[-1].stage == "snapshot"
        assert not report.timings[-1].simulated  # measured, not modelled
        assert len(store.snapshot_paths()) == 1
        recovered = store.recover()
        assert recovered.model.n_trained_on == train.n_rows

    def test_non_hedgecut_deployments_skip_the_snapshot_stage(self, data, tmp_path):
        from repro.persistence.store import ModelStore

        train, validation = data
        store = ModelStore(tmp_path / "store")
        pipeline = make_pipeline(store=store)
        report = pipeline.run(train, validation)
        assert all(timing.stage != "snapshot" for timing in report.timings)
        assert store.snapshot_paths() == []
