"""Tests for the shared-memory replica fleet (:mod:`repro.serving.shm`).

Everything here is marked ``shm`` (creates shared-memory segments and/or
spawns reader processes). The quick in-process and small-fleet tests run
in tier-1; the heavy kill/restart matrix additionally carries ``slow``.
"""

import copy
import os
import signal

import numpy as np
import pytest

from repro.core.ensemble import HedgeCutClassifier
from repro.persistence.store import ModelStore
from repro.serving import shm as shm_module
from repro.serving.microbatch import MicroBatchConfig, MicroBatcher
from repro.serving.shm import (
    HDR_SEQLOCK,
    SharedEnsembleReader,
    SharedPackedEnsemble,
    ShmReplicatedServingEngine,
    TornReadError,
)

from tests.conftest import make_random_dataset

pytestmark = pytest.mark.shm


@pytest.fixture(scope="module")
def dataset():
    return make_random_dataset(n_rows=300, seed=11)


@pytest.fixture()
def model(dataset):
    return HedgeCutClassifier(n_trees=4, epsilon=0.05, seed=5).fit(dataset)


@pytest.fixture()
def segment_name(request):
    # Unique per test: parallel test processes must never share segments.
    return f"hc-test-{os.getpid():x}-{abs(hash(request.node.nodeid)) % 10**8:x}"


def _engine(tmp_path, model, **kwargs):
    kwargs.setdefault("n_readers", 2)
    return ShmReplicatedServingEngine(
        model, ModelStore(tmp_path / "store"), **kwargs
    )


class TestSharedRoundtrip:
    """Writer plus an in-process reader: the protocol without processes."""

    def test_reader_is_bit_identical_to_packed(self, model, dataset, segment_name):
        packed = model.packed
        matrix = dataset.feature_matrix()
        with SharedPackedEnsemble(segment_name, packed) as shared:
            with SharedEnsembleReader(segment_name) as reader:
                assert np.array_equal(
                    reader.predict_proba_rows(matrix),
                    packed.predict_proba_rows(matrix),
                )
                assert np.array_equal(
                    reader.predict_rows(matrix), packed.predict_rows(matrix)
                )
                assert np.array_equal(
                    reader.predict_votes_rows(matrix),
                    packed.predict_votes_rows(matrix),
                )
                assert reader.stats.n_reads == 3
                assert shared.wal_seq == 0

    def test_leaf_publish_reaches_attached_reader(self, model, dataset, segment_name):
        with SharedPackedEnsemble(segment_name, model.packed) as shared:
            with SharedEnsembleReader(segment_name) as reader:
                matrix = dataset.feature_matrix()
                for row in range(10):
                    model.unlearn(dataset.record(row), allow_budget_overrun=True)
                # Same pack object, same epoch: cheap leaf publish suffices.
                assert shared.publish(model.packed, wal_seq=10) in ("leaves", "structure")
                assert reader.wal_seq == 10
                assert np.array_equal(
                    reader.predict_proba_rows(matrix),
                    model.packed.predict_proba_rows(matrix),
                )

    def test_variant_switch_publishes_span_delta(self, model, dataset, segment_name):
        # A variant switch splices in place: the publish copies only the
        # dirty spans, cuts NO new generation, and the attached reader sees
        # the new structure bit-identically without re-mapping segments.
        packed = model.packed
        info = next(
            (
                span
                for span in packed._spans.values()
                if len(span.node.variants) > 1
            ),
            None,
        )
        if info is None:
            pytest.skip("model has no multi-variant maintenance node")
        node = info.node
        with SharedPackedEnsemble(segment_name, packed) as shared:
            with SharedEnsembleReader(segment_name) as reader:
                matrix = dataset.feature_matrix()
                reader.predict_rows(matrix)
                assert reader.generation == 0
                node.active_index = (node.active_index + 1) % len(node.variants)
                assert packed.splice_subtree(node) == info.tree
                assert shared.publish(packed, wal_seq=1) == "spans"
                assert shared.generation == 0  # geometry unchanged
                assert shared.span_publishes == 1
                assert 0 < shared.last_structural_bytes
                assert (
                    shared.last_structural_bytes
                    < shared.generation_structural_bytes
                )
                assert reader.wal_seq == 1
                assert np.array_equal(
                    reader.predict_proba_rows(matrix),
                    packed.predict_proba_rows(matrix),
                )
                assert reader.generation == 0
                assert reader.stats.generation_switches == 1  # initial only

    def test_rebuild_cuts_new_generation(self, model, dataset, segment_name):
        # A genuinely geometry-changing event (here: a snapshot-restore
        # style rebuild via pickle) still goes through the full structural
        # path: new epoch, new generation segments.
        import pickle

        with SharedPackedEnsemble(segment_name, model.packed) as shared:
            with SharedEnsembleReader(segment_name) as reader:
                matrix = dataset.feature_matrix()
                reader.predict_rows(matrix)
                rebuilt = pickle.loads(pickle.dumps(model.packed))
                assert shared.publish(rebuilt, wal_seq=1) == "structure"
                assert shared.generation == 1
                assert np.array_equal(
                    reader.predict_proba_rows(matrix),
                    rebuilt.predict_proba_rows(matrix),
                )
                assert reader.generation == 1
                assert reader.stats.generation_switches == 2  # initial + bump

    def test_attach_to_missing_segment_fails(self):
        with pytest.raises(FileNotFoundError):
            SharedEnsembleReader("hc-test-no-such-segment")

    def test_torn_publish_exhausts_retry_bound(self, model, dataset, segment_name):
        with SharedPackedEnsemble(segment_name, model.packed) as shared:
            with SharedEnsembleReader(
                segment_name, max_retries=5, retry_wait_s=1e-5
            ) as reader:
                matrix = dataset.feature_matrix()[:4]
                # Simulate a writer dead mid-publish: seqlock left odd.
                shared._header[HDR_SEQLOCK] += 1
                with pytest.raises(TornReadError):
                    reader.predict_rows(matrix)
                # Writer completes the publish: reads succeed again and the
                # retries were counted, not silently swallowed.
                shared._header[HDR_SEQLOCK] += 1
                reader.predict_rows(matrix)
                assert reader.stats.n_reads == 1

    def test_wal_barrier_times_out_without_writer(self, model, segment_name):
        with SharedPackedEnsemble(segment_name, model.packed):
            with SharedEnsembleReader(segment_name, wal_timeout_s=0.05) as reader:
                reader.wait_for_wal(0)  # already published
                with pytest.raises(TornReadError):
                    reader.wait_for_wal(10**6)
                assert reader.stats.wal_waits == 1

    def test_orphaned_segments_are_reclaimed(self, model, segment_name):
        # A writer that never closed (SIGKILL) leaves named segments behind;
        # the next writer under the same name must claim them, not crash.
        abandoned = SharedPackedEnsemble(segment_name, model.packed)
        try:
            with SharedPackedEnsemble(segment_name, model.packed) as shared:
                with SharedEnsembleReader(segment_name) as reader:
                    assert reader.wal_seq == shared.wal_seq
        finally:
            abandoned.close(unlink=False)  # its segments were taken over


class TestFleetEngine:
    """The full engine: reader processes, consistency modes, crash healing."""

    def test_strong_reads_match_reference_after_campaign(
        self, tmp_path, model, dataset
    ):
        reference = copy.deepcopy(model)
        with _engine(tmp_path, model, consistency="strong") as engine:
            for row in range(6):
                entry = engine.unlearn(
                    f"req-{row}", dataset.record(row), allow_budget_overrun=True
                )
                assert entry.succeeded
                reference.unlearn(dataset.record(row), allow_budget_overrun=True)
            assert engine.staleness() == [0, 0]
            expected = reference.predict_proba_batch(dataset)
            # Round-robin over both readers: each answers bit-identically.
            for _ in range(2):
                assert np.array_equal(engine.predict_proba_batch(dataset), expected)
            assert np.array_equal(
                engine.predict_batch(dataset), reference.predict_batch(dataset)
            )

    def test_read_your_deletes_publishes_lazily(self, tmp_path, model, dataset):
        reference = copy.deepcopy(model)
        with _engine(tmp_path, model, consistency="read_your_deletes") as engine:
            for row in range(8):
                engine.unlearn(
                    f"req-{row}", dataset.record(row), allow_budget_overrun=True
                )
                reference.unlearn(dataset.record(row), allow_budget_overrun=True)
            assert engine.staleness() == [8, 8]  # durable but unpublished
            expected = reference.predict_proba_batch(dataset)
            assert np.array_equal(engine.predict_proba_batch(dataset), expected)
            assert engine.staleness() == [0, 0]  # the read forced the publish

    def test_eventual_reads_can_lag_until_sync(self, tmp_path, model, dataset):
        stale_model = copy.deepcopy(model)
        reference = copy.deepcopy(model)
        with _engine(
            tmp_path, model, n_readers=1, consistency="eventual"
        ) as engine:
            stale = stale_model.predict_proba_batch(dataset)
            for row in range(8):
                engine.unlearn(
                    f"req-{row}", dataset.record(row), allow_budget_overrun=True
                )
                reference.unlearn(dataset.record(row), allow_budget_overrun=True)
            assert engine.staleness() == [8]
            assert np.array_equal(engine.predict_proba_batch(dataset), stale)
            engine.sync()
            assert engine.staleness() == [0]
            assert np.array_equal(
                engine.predict_proba_batch(dataset),
                reference.predict_proba_batch(dataset),
            )

    def test_batch_deletions_group_commit(self, tmp_path, model, dataset):
        reference = copy.deepcopy(model)
        with _engine(tmp_path, model) as engine:
            records = [dataset.record(row) for row in range(12)]
            entry = engine.unlearn_batch(
                "batch-1", records, allow_budget_overrun=True
            )
            assert entry.succeeded
            for record in records:
                reference.unlearn(record, allow_budget_overrun=True)
            assert engine.durable_seq == 12
            assert np.array_equal(
                engine.predict_proba_batch(dataset),
                reference.predict_proba_batch(dataset),
            )

    def test_single_record_requests(self, tmp_path, model, dataset):
        reference = copy.deepcopy(model)
        with _engine(tmp_path, model, n_readers=1) as engine:
            record = dataset.record(3)
            assert engine.predict(record) == reference.predict(record)
            assert engine.predict_proba(record) == reference.predict_proba(record)

    def test_microbatcher_dispatches_over_the_fleet(self, tmp_path, model, dataset):
        reference = copy.deepcopy(model)
        with _engine(tmp_path, model) as engine:
            batcher = MicroBatcher(engine, MicroBatchConfig(max_batch=4))
            pending = [
                batcher.submit_predict(dataset.record(row).values)
                for row in range(8)
            ]
            batcher.flush()
            labels = np.asarray([p.result() for p in pending])
            assert np.array_equal(labels, reference.predict_batch(dataset)[:8])

    def test_pipelined_fleet_matches_sync_path(self, tmp_path, model, dataset):
        with _engine(tmp_path, model) as engine:
            matrix = dataset.feature_matrix()
            expected = engine.predict_proba_rows(matrix)
            engine.broadcast_eval_matrix(matrix)
            handles = [
                engine.submit_eval("proba", start, min(start + 64, 300))
                for start in range(0, 300, 64)
            ]
            stitched = np.concatenate([handle.result() for handle in handles])
            assert np.array_equal(stitched, expected)

    def test_reader_sigkill_heals_transparently(self, tmp_path, model, dataset):
        with _engine(tmp_path, model, n_readers=2) as engine:
            expected = engine.predict_proba_batch(dataset)
            victim_pid = engine._readers[0].process.pid
            os.kill(victim_pid, signal.SIGKILL)
            engine._readers[0].process.join(timeout=5)
            # Both round-robin slots must answer: the dead reader is
            # detected, respawned (fresh attach by name) and re-sent.
            for _ in range(2):
                assert np.array_equal(engine.predict_proba_batch(dataset), expected)
            assert engine.reader_respawns == 1
            assert engine._readers[0].process.pid != victim_pid

    def test_rejects_bad_arguments(self, tmp_path, model):
        with pytest.raises(ValueError):
            _engine(tmp_path, model, n_readers=0)
        with pytest.raises(ValueError):
            _engine(tmp_path, model, consistency="quantum")


class TestCrashRecovery:
    """SIGKILL either role mid-campaign; recovery must be bit-identical."""

    def test_recover_resumes_from_snapshot_plus_wal(self, tmp_path, model, dataset):
        reference = copy.deepcopy(model)
        with _engine(tmp_path, model, n_readers=1) as engine:
            for row in range(4):
                engine.unlearn(
                    f"req-{row}", dataset.record(row), allow_budget_overrun=True
                )
                reference.unlearn(dataset.record(row), allow_budget_overrun=True)
            engine.snapshot()
            for row in range(4, 9):
                engine.unlearn(
                    f"req-{row}", dataset.record(row), allow_budget_overrun=True
                )
                reference.unlearn(dataset.record(row), allow_budget_overrun=True)
            # No snapshot of the tail: recovery must replay it from the WAL.
        recovered = ShmReplicatedServingEngine.recover(
            ModelStore(tmp_path / "store"), n_readers=2
        )
        with recovered:
            assert recovered.durable_seq == 9
            assert np.array_equal(
                recovered.predict_proba_batch(dataset),
                reference.predict_proba_batch(dataset),
            )

    @pytest.mark.slow
    def test_writer_sigkill_mid_publish_recovers_bit_identically(
        self, tmp_path, dataset
    ):
        """Kill the writer in the torn-publish window (seqlock odd), then
        recover: readers saw bounded retries, never wrong answers, and the
        restarted fleet serves the exact uninterrupted-run state."""
        import multiprocessing

        ctx = multiprocessing.get_context("fork")

        def crashing_campaign() -> None:
            model = HedgeCutClassifier(n_trees=4, epsilon=0.05, seed=5).fit(dataset)
            engine = ShmReplicatedServingEngine(
                model,
                ModelStore(tmp_path / "store"),
                n_readers=1,
                consistency="strong",
            )
            for row in range(4):
                engine.unlearn(
                    f"req-{row}", dataset.record(row), allow_budget_overrun=True
                )
            engine.snapshot()
            # Die inside the seqlock window of the *next* publish: the WAL
            # frame for req-4 is durable, the shared header is torn.
            shm_module._PUBLISH_FAULT_HOOK = lambda: os.kill(
                os.getpid(), signal.SIGKILL
            )
            engine.unlearn(
                "req-4", dataset.record(4), allow_budget_overrun=True
            )
            raise AssertionError("the fault hook must have killed this process")

        writer = ctx.Process(target=crashing_campaign)
        writer.start()
        writer.join(timeout=120)
        assert writer.exitcode == -signal.SIGKILL

        # The uninterrupted reference run of the same 5-deletion campaign.
        reference = HedgeCutClassifier(n_trees=4, epsilon=0.05, seed=5).fit(dataset)
        for row in range(5):
            reference.unlearn(dataset.record(row), allow_budget_overrun=True)

        recovered = ShmReplicatedServingEngine.recover(
            ModelStore(tmp_path / "store"), n_readers=2
        )
        with recovered:
            assert recovered.durable_seq == 5  # req-4's frame survived
            assert np.array_equal(
                recovered.predict_proba_batch(dataset),
                reference.predict_proba_batch(dataset),
            )

    @pytest.mark.slow
    def test_reader_sigkill_storm_mid_campaign(self, tmp_path, model, dataset):
        """Repeatedly kill readers while deletions and reads interleave:
        answers stay bit-identical to the reference throughout."""
        reference = copy.deepcopy(model)
        with _engine(tmp_path, model, n_readers=2) as engine:
            for round_id in range(6):
                engine.unlearn(
                    f"req-{round_id}",
                    dataset.record(round_id),
                    allow_budget_overrun=True,
                )
                reference.unlearn(
                    dataset.record(round_id), allow_budget_overrun=True
                )
                if round_id % 2 == 0:
                    victim = engine._readers[round_id % 2]
                    os.kill(victim.process.pid, signal.SIGKILL)
                    victim.process.join(timeout=5)
                expected = reference.predict_proba_batch(dataset)
                for _ in range(2):  # hit both round-robin slots
                    assert np.array_equal(
                        engine.predict_proba_batch(dataset), expected
                    )
            assert engine.reader_respawns == 3


class TestShardedShm:
    def test_per_shard_segment_fleet_matches_inprocess(self, tmp_path, dataset):
        from repro.sharding.model import ShardedHedgeCut
        from repro.sharding.service import ShardedServingEngine
        from repro.sharding.store import ShardedModelStore

        model = ShardedHedgeCut(
            n_shards=2, n_trees=4, epsilon=0.05, seed=5
        ).fit(dataset)
        reference = copy.deepcopy(model)
        store = ShardedModelStore(tmp_path / "sharded", n_shards=2)
        with ShardedServingEngine(
            model, store, n_replicas=1, serving="shm"
        ) as engine:
            for row in range(6):
                engine.unlearn(
                    f"req-{row}", dataset.record(row), allow_budget_overrun=True
                )
                reference.unlearn(dataset.record(row), allow_budget_overrun=True)
            matrix = dataset.feature_matrix()
            assert np.array_equal(
                engine.predict_proba_rows(matrix),
                reference.predict_proba_rows(matrix),
            )
            assert np.array_equal(
                engine.predict_rows(matrix), reference.predict_rows(matrix)
            )

    def test_rejects_unknown_serving_mode(self, tmp_path, dataset):
        from repro.sharding.model import ShardedHedgeCut
        from repro.sharding.service import ShardedServingEngine
        from repro.sharding.store import ShardedModelStore

        model = ShardedHedgeCut(n_shards=2, n_trees=4, epsilon=0.05, seed=5).fit(
            dataset
        )
        store = ShardedModelStore(tmp_path / "sharded", n_shards=2)
        with pytest.raises(ValueError):
            ShardedServingEngine(model, store, serving="carrier-pigeon")
