"""Tests for the model-serving simulator."""

import pytest

from repro.serving.simulator import RequestMix, ServingSimulator, ThroughputReport


class TestRequestMix:
    def test_rejects_zero_requests(self):
        with pytest.raises(ValueError):
            RequestMix(n_requests=0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            RequestMix(n_requests=10, unlearn_fraction=1.0)
        with pytest.raises(ValueError):
            RequestMix(n_requests=10, unlearn_fraction=-0.1)


class TestThroughputReport:
    def test_rates(self):
        report = ThroughputReport(n_predictions=90, n_unlearnings=10, total_seconds=2.0)
        assert report.requests_per_second == pytest.approx(50.0)
        assert report.predictions_per_second == pytest.approx(45.0)

    def test_zero_time_guard(self):
        report = ThroughputReport(n_predictions=0, n_unlearnings=0, total_seconds=0.0)
        assert report.requests_per_second == 0.0

    def test_percentile_requires_samples(self):
        report = ThroughputReport(1, 0, 1.0)
        with pytest.raises(ValueError):
            report.latency_percentile(99)


class TestSimulation:
    def test_pure_prediction_workload(self, fitted_model, income_split):
        _, test = income_split
        simulator = ServingSimulator(fitted_model, test, seed=0)
        report = simulator.run(RequestMix(n_requests=200))
        assert report.n_predictions == 200
        assert report.n_unlearnings == 0
        assert report.requests_per_second > 0

    def test_mixed_workload_consumes_unlearn_pool(self, fitted_model, income_split):
        train, test = income_split
        budget = fitted_model.deletion_budget
        pool = [train.record(row) for row in range(budget)]
        simulator = ServingSimulator(fitted_model, test, unlearn_pool=pool, seed=0)
        report = simulator.run(RequestMix(n_requests=400, unlearn_fraction=0.01))
        expected = min(4, budget)
        assert report.n_unlearnings == expected
        assert fitted_model.n_unlearned == expected

    def test_unlearnings_capped_by_budget(self, fitted_model, income_split):
        train, test = income_split
        budget = fitted_model.deletion_budget
        pool = [train.record(row) for row in range(budget + 5)]
        simulator = ServingSimulator(fitted_model, test, unlearn_pool=pool, seed=1)
        report = simulator.run(RequestMix(n_requests=2000, unlearn_fraction=0.5))
        assert report.n_unlearnings <= budget

    def test_latency_recording(self, fitted_model, income_split):
        _, test = income_split
        simulator = ServingSimulator(fitted_model, test, seed=2, record_latencies=True)
        report = simulator.run(RequestMix(n_requests=50))
        assert len(report.prediction_latencies_us) == 50
        p50 = report.latency_percentile(50)
        p99 = report.latency_percentile(99)
        assert 0 < p50 <= p99

    def test_tiny_workload_still_issues_an_unlearning_request(
        self, fitted_model, income_split
    ):
        """unlearn_fraction > 0 must never round down to zero deletions."""
        train, test = income_split
        pool = [train.record(0)]
        simulator = ServingSimulator(fitted_model, test, unlearn_pool=pool, seed=3)
        # 2 * 0.2 rounds to 0; the documented floor guarantees one request.
        report = simulator.run(RequestMix(n_requests=2, unlearn_fraction=0.2))
        assert report.n_unlearnings == 1
        assert fitted_model.n_unlearned == 1

    def test_zero_fraction_issues_no_unlearning_request(
        self, fitted_model, income_split
    ):
        train, test = income_split
        pool = [train.record(0)]
        simulator = ServingSimulator(fitted_model, test, unlearn_pool=pool, seed=3)
        report = simulator.run(RequestMix(n_requests=2, unlearn_fraction=0.0))
        assert report.n_unlearnings == 0
        assert fitted_model.n_unlearned == 0

    def test_unlearning_floor_respects_empty_pool(self, fitted_model, income_split):
        _, test = income_split
        simulator = ServingSimulator(fitted_model, test, unlearn_pool=[], seed=3)
        report = simulator.run(RequestMix(n_requests=2, unlearn_fraction=0.4))
        assert report.n_unlearnings == 0

    def test_empty_prediction_pool_rejected(self, fitted_model, income_split):
        import numpy as np

        _, test = income_split
        empty = test.take(np.asarray([], dtype=np.int64))
        with pytest.raises(ValueError):
            ServingSimulator(fitted_model, empty)


class TestBatchedSimulation:
    """The batch-window path routes predictions through the packed kernel."""

    def test_rejects_bad_batch_size(self, fitted_model, income_split):
        _, test = income_split
        with pytest.raises(ValueError):
            ServingSimulator(fitted_model, test, batch_size=0)

    def test_pure_prediction_workload_batches(self, fitted_model, income_split):
        _, test = income_split
        simulator = ServingSimulator(fitted_model, test, seed=0, batch_size=32)
        report = simulator.run(RequestMix(n_requests=100))
        assert report.n_predictions == 100
        assert report.n_batches == 4  # 32 + 32 + 32 + 4
        assert report.rows_per_second > 0
        assert report.requests_per_second > 0

    def test_unlearning_flushes_open_batch(self, fitted_model, income_split):
        train, test = income_split
        pool = [train.record(row) for row in range(3)]
        simulator = ServingSimulator(
            fitted_model, test, unlearn_pool=pool, seed=0, batch_size=1000
        )
        report = simulator.run(RequestMix(n_requests=200, unlearn_fraction=0.01))
        assert report.n_unlearnings >= 1
        assert report.n_predictions + report.n_unlearnings == 200
        # Every deletion cuts the open batch, plus the final flush.
        assert report.n_batches >= report.n_unlearnings
        assert fitted_model.n_unlearned == report.n_unlearnings

    def test_batch_latencies_recorded(self, fitted_model, income_split):
        _, test = income_split
        simulator = ServingSimulator(
            fitted_model, test, seed=0, record_latencies=True, batch_size=16
        )
        report = simulator.run(RequestMix(n_requests=64))
        assert len(report.batch_latencies_us) == report.n_batches == 4
        assert report.latency_percentile(50, kind="batch") > 0
