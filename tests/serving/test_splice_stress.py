"""Stress tests for in-place span splicing under concurrent serving.

Two scenarios the reserved-span layout must survive:

* a deferred-maintenance flush splices a subtree and span-publishes it
  while a shared-memory reader is mid-traversal -- the reader must retry
  under the seqlock (observed via :class:`ReaderStats`) and land on a
  validated, consistent read;
* crash recovery replays a WAL tail whose operations include a variant
  switch, so the recovered pack is a *spliced* pack -- it must be
  bit-identical (all seven flat arrays) to an eager from-scratch rebuild.
"""

import copy
import pickle
import threading
import time

import numpy as np
import pytest

from repro.core.ensemble import HedgeCutClassifier
from repro.core.packed import PackedEnsemble
from repro.persistence.store import ModelStore
from repro.serving import shm as shm_module
from repro.serving.shm import (
    SharedEnsembleReader,
    SharedPackedEnsemble,
    TornReadError,
)

from tests.conftest import make_random_dataset

pytestmark = pytest.mark.shm


@pytest.fixture(scope="module")
def dataset():
    return make_random_dataset(n_rows=300, seed=11)


def _assert_packs_bit_identical(spliced: PackedEnsemble, fresh: PackedEnsemble):
    """All seven flat arrays equal: the splice left zero residue."""
    a, b = spliced.arrays(), fresh.arrays()
    assert np.array_equal(a.feature, b.feature)
    assert np.array_equal(a.payload, b.payload)
    assert np.array_equal(a.right, b.right)
    assert np.array_equal(a.route_flat, b.route_flat)
    assert np.array_equal(a.tree_roots, b.tree_roots)
    assert np.array_equal(a.leaf_n, b.leaf_n)
    assert np.array_equal(a.leaf_n_plus, b.leaf_n_plus)


def _unlearn_until_flush_splices(model, dataset, max_rows=120):
    """Deferred-unlearn rows until a flush actually switches a variant."""
    row = 0
    while row < max_rows:
        stop = min(row + 20, max_rows)
        while row < stop:
            model.unlearn(dataset.record(row), allow_budget_overrun=True)
            row += 1
        report = model.flush_maintenance()
        if report.switched_nodes:
            return report
    pytest.skip("campaign produced no variant switch to splice")


class TestFlushSpliceUnderConcurrentReads:
    def test_reader_mid_traversal_retries_and_validates(self, dataset, tmp_path):
        model = HedgeCutClassifier(
            n_trees=4, epsilon=0.05, seed=5, maintenance="deferred"
        ).fit(dataset)
        packed = model.packed  # force the packed write path

        segment_name = f"hc-stress-{tmp_path.name[-8:]}"
        matrix = dataset.feature_matrix()[:16]
        attempting = threading.Event()
        result: dict = {}

        def _reader_main(reader):
            attempting.set()
            result["probas"] = reader.predict_proba_rows(matrix)

        def _fault_hook():
            # Runs inside _commit while the seqlock is odd -- the span
            # memcpy is done but the publish is not sealed. A bounded
            # optimistic read here MUST observe the torn window, spin its
            # retry budget under the seqlock, and surface TornReadError:
            # the deterministic proof that mid-splice readers retry
            # rather than serving half-published structure.
            with SharedEnsembleReader(
                segment_name, max_retries=4, retry_wait_s=1e-5
            ) as probe:
                try:
                    probe.predict_proba_rows(matrix)
                except TornReadError:
                    result["torn_window_observed"] = True
            # Let the concurrent reader thread into the window too before
            # the seqlock seals (its read then completes post-commit).
            assert attempting.wait(timeout=5.0)
            time.sleep(0.05)

        with SharedPackedEnsemble(segment_name, packed) as shared:
            with SharedEnsembleReader(
                segment_name, max_retries=10_000, retry_wait_s=1e-4
            ) as reader:
                # Splice while the segment is live: the flush rewrites the
                # node's reserved span in the writer's pack and leaves the
                # dirty ranges for the next publish to mirror.
                report = _unlearn_until_flush_splices(model, dataset)
                assert packed.has_dirty_spans
                thread = threading.Thread(target=_reader_main, args=(reader,))
                shm_module._PUBLISH_FAULT_HOOK = _fault_hook
                try:
                    thread.start()
                    kind = shared.publish(packed, wal_seq=1)
                finally:
                    shm_module._PUBLISH_FAULT_HOOK = None
                    thread.join(timeout=10.0)
                assert not thread.is_alive()
                assert kind == "spans"
                assert shared.generation == 0  # no new segments cut
                assert result.get("torn_window_observed"), (
                    "the mid-publish probe read did not retry and tear"
                )
                # The concurrent read completed only after the commit:
                # its result must be the *post-splice* state, bit-for-bit.
                assert np.array_equal(
                    result["probas"], packed.predict_proba_rows(matrix)
                )

        # And the spliced pack itself carries no residue of the old
        # variants: byte-identical to an eager from-scratch rebuild.
        _assert_packs_bit_identical(packed, pickle.loads(pickle.dumps(packed)))
        assert report.variant_switches >= 1


class TestRecoveryAcrossSplice:
    def test_wal_tail_replay_splices_bit_identically(self, dataset, tmp_path):
        model = HedgeCutClassifier(n_trees=4, epsilon=0.05, seed=5).fit(dataset)
        assert model.node_census().n_maintenance_nodes > 0

        # Live campaign: durably log deletions, apply them through the
        # packed fast path, and keep going until one of them splices.
        work = copy.deepcopy(model)
        switches = 0
        k = 0
        with ModelStore(tmp_path / "store") as store:
            store.save_snapshot(work, wal_seq=0)
            _ = work.packed
            while k < 120 and switches == 0:
                record = dataset.record(k)
                store.wal.append(
                    record, request_id=f"req-{k}", allow_budget_overrun=True
                )
                switches += work.unlearn(
                    record, allow_budget_overrun=True
                ).variant_switches
                k += 1
            # Crash here: no final snapshot.
        if switches == 0:
            pytest.skip("campaign produced no variant switch to splice")

        recovered = ModelStore(tmp_path / "store").recover()
        assert recovered.n_replayed == k

        # Recovery replays the tail through the same write path, so its
        # pack was spliced too -- and must equal both the uninterrupted
        # live pack and an eager from-scratch rebuild, bit for bit.
        _assert_packs_bit_identical(recovered.model.packed, work.packed)
        _assert_packs_bit_identical(
            recovered.model.packed,
            pickle.loads(pickle.dumps(recovered.model.packed)),
        )
        assert np.array_equal(
            recovered.model.predict_batch(dataset),
            work.predict_batch(dataset),
        )
