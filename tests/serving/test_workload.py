"""Workload generator: storms, heavy tails, caps, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.workload import (
    Workload,
    WorkloadEvent,
    WorkloadProfile,
    generate_workload,
)


class TestProfileValidation:
    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError, match="base_unlearn_fraction"):
            WorkloadProfile(n_requests=10, base_unlearn_fraction=1.5)

    def test_rejects_non_positive_requests(self):
        with pytest.raises(ValueError, match="n_requests"):
            WorkloadProfile(n_requests=0)

    def test_rejects_bad_tail_shape(self):
        with pytest.raises(ValueError, match="user_size_shape"):
            WorkloadProfile(n_requests=10, user_size_shape=0.0)

    def test_rejects_storm_without_length(self):
        with pytest.raises(ValueError, match="storm_length"):
            WorkloadProfile(n_requests=10, n_storms=1, storm_length=0)


class TestGeneration:
    def test_deterministic_per_seed(self):
        profile = WorkloadProfile(
            n_requests=300, base_unlearn_fraction=0.05, n_storms=2, storm_length=30
        )
        first = generate_workload(profile, n_prediction_rows=50, n_deletable=100, seed=7)
        second = generate_workload(profile, n_prediction_rows=50, n_deletable=100, seed=7)
        assert first.events == second.events
        assert first.storm_windows == second.storm_windows

    def test_every_slot_becomes_one_event(self):
        profile = WorkloadProfile(n_requests=200, base_unlearn_fraction=0.1)
        workload = generate_workload(profile, n_prediction_rows=20, n_deletable=500, seed=1)
        assert len(workload.events) == 200
        assert workload.n_predictions + workload.n_deletion_events == 200

    def test_deletions_never_exceed_the_deletable_pool(self):
        profile = WorkloadProfile(
            n_requests=500, base_unlearn_fraction=0.5, max_user_size=32
        )
        workload = generate_workload(profile, n_prediction_rows=10, n_deletable=40, seed=2)
        assert workload.n_deletions <= 40

    def test_user_sizes_are_heavy_tailed_but_capped(self):
        profile = WorkloadProfile(
            n_requests=2000,
            base_unlearn_fraction=0.3,
            user_size_shape=1.2,
            max_user_size=16,
        )
        workload = generate_workload(
            profile, n_prediction_rows=10, n_deletable=100_000, seed=3
        )
        sizes = np.asarray(workload.deletion_sizes)
        assert sizes.min() >= 1
        assert sizes.max() <= 16
        assert sizes.max() > int(np.median(sizes))  # a tail exists

    def test_storms_concentrate_deletions(self):
        profile = WorkloadProfile(
            n_requests=1000,
            base_unlearn_fraction=0.01,
            n_storms=3,
            storm_length=60,
            storm_unlearn_fraction=0.8,
        )
        workload = generate_workload(
            profile, n_prediction_rows=10, n_deletable=100_000, seed=4
        )
        assert workload.storm_windows
        in_storm = np.zeros(1000, dtype=bool)
        for start, stop in workload.storm_windows:
            in_storm[start:stop] = True
        events_in = sum(
            1
            for slot, event in enumerate(workload.events)
            if event.kind == "unlearn" and in_storm[slot]
        )
        events_out = workload.n_deletion_events - events_in
        slots_in = int(in_storm.sum())
        rate_in = events_in / slots_in
        rate_out = events_out / (1000 - slots_in)
        assert rate_in > 5 * rate_out

    def test_prediction_rows_stay_in_pool(self):
        profile = WorkloadProfile(n_requests=300, base_unlearn_fraction=0.0)
        workload = generate_workload(profile, n_prediction_rows=7, n_deletable=0, seed=5)
        assert workload.n_deletion_events == 0
        assert all(0 <= event.row < 7 for event in workload.events)


class TestWorkloadSummaries:
    def test_counts_are_consistent(self):
        events = [
            WorkloadEvent(kind="predict", row=1),
            WorkloadEvent(kind="unlearn", size=4),
            WorkloadEvent(kind="unlearn", size=1),
        ]
        workload = Workload(events=events)
        assert workload.n_predictions == 1
        assert workload.n_deletion_events == 2
        assert workload.n_deletions == 5
        assert workload.deletion_sizes == [4, 1]
