"""Fixtures for the sharded-service tests.

Training is the expensive part: fitted sharded models are session-scoped
and deep-copied per test that mutates them, mirroring the root conftest.
"""

from __future__ import annotations

import copy

import pytest

from repro.sharding.model import ShardedHedgeCut


@pytest.fixture(scope="session")
def sharded_model_session(income_split) -> ShardedHedgeCut:
    """A fitted 4-way sharded model for read-only tests. Never mutate."""
    train, _ = income_split
    model = ShardedHedgeCut(n_shards=4, n_trees=8, epsilon=0.05, seed=5)
    return model.fit(train)


@pytest.fixture()
def sharded_model(sharded_model_session) -> ShardedHedgeCut:
    """A private deep copy of the session sharded model, safe to mutate."""
    return copy.deepcopy(sharded_model_session)
