"""Asyncio gateway: correctness, admission control, fairness accounting.

No pytest-asyncio in the environment, so every test drives its own event
loop with ``asyncio.run``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.exceptions import HedgeCutError
from repro.serving.microbatch import MicroBatchConfig
from repro.sharding.gateway import (
    AsyncShardedGateway,
    GatewayConfig,
    GatewayOverloaded,
)
from repro.sharding.microbatch import ShardedMicroBatcher
from repro.sharding.service import ShardedServingEngine
from repro.sharding.store import ShardedModelStore


@pytest.fixture()
def engine(sharded_model, tmp_path):
    store = ShardedModelStore(tmp_path / "store", n_shards=4)
    service = ShardedServingEngine(sharded_model, store)
    yield service
    service.close()


@pytest.fixture()
def batcher(engine):
    return ShardedMicroBatcher(
        engine, MicroBatchConfig(max_batch=64, max_delay_ms=10_000.0)
    )


class TestGatewayConfig:
    def test_rejects_bad_admission_mode(self):
        with pytest.raises(ValueError, match="admission"):
            GatewayConfig(admission="drop")

    def test_rejects_non_positive_depth(self):
        with pytest.raises(ValueError, match="max_queue_depth"):
            GatewayConfig(max_queue_depth=0)


class TestServing:
    def test_concurrent_predictions_match_direct_answers(
        self, batcher, engine, income_split
    ):
        _, test = income_split
        probes = [test.record(row) for row in range(10)]
        expected = [engine.predict(probe.values) for probe in probes]

        async def drive():
            async with AsyncShardedGateway(batcher) as gateway:
                return await asyncio.gather(
                    *[gateway.predict("tenant", probe) for probe in probes]
                )

        assert asyncio.run(drive()) == expected

    def test_proba_and_unlearn_roundtrip(self, batcher, engine, income_split):
        train, test = income_split
        probe = test.record(0)
        victim = train.record(12)
        expected_proba = engine.predict_proba(probe.values)

        async def drive():
            async with AsyncShardedGateway(batcher) as gateway:
                proba = await gateway.predict_proba("tenant-a", probe)
                entry = await gateway.unlearn("tenant-b", "gdpr-1", victim)
                return proba, entry

        proba, entry = asyncio.run(drive())
        assert proba == pytest.approx(expected_proba)
        assert entry.shard_id == engine.owning_shard(victim)
        assert engine.evidence_for("gdpr-1").shard_id == entry.shard_id

    def test_deletion_then_prediction_observes_the_deletion(
        self, batcher, engine, income_split
    ):
        train, test = income_split
        probe = test.record(3)

        async def drive():
            async with AsyncShardedGateway(batcher) as gateway:
                await gateway.unlearn("tenant", "gdpr-2", train.record(33))
                return await gateway.predict_proba("tenant", probe)

        assert asyncio.run(drive()) == pytest.approx(
            engine.predict_proba(probe.values)
        )

    def test_submission_outside_lifecycle_fails(self, batcher, income_split):
        _, test = income_split
        gateway = AsyncShardedGateway(batcher)

        async def drive():
            with pytest.raises(HedgeCutError, match="not running"):
                await gateway.predict("tenant", test.record(0))

        asyncio.run(drive())

    def test_budget_exhaustion_surfaces_in_audit_entries(
        self, batcher, engine, income_split
    ):
        """The audit layer answers (not raises): callers see failed entries."""
        train, _ = income_split
        shard = 0
        budget = engine.model.shards[shard].remaining_deletion_budget
        victims = []
        for row in range(train.n_rows):
            record = train.record(row)
            if engine.owning_shard(record) == shard:
                victims.append(record)
                if len(victims) > budget:
                    break

        async def drive():
            async with AsyncShardedGateway(batcher) as gateway:
                entries = []
                for position, record in enumerate(victims):
                    entries.append(
                        await gateway.unlearn("tenant", f"gdpr-{position}", record)
                    )
                return entries

        entries = asyncio.run(drive())
        assert all(entry.succeeded for entry in entries[:budget])
        assert not entries[-1].succeeded
        assert "budget" in entries[-1].error


class TestAdmissionControl:
    def test_reject_mode_sheds_load_when_queue_fills(
        self, batcher, income_split
    ):
        _, test = income_split
        config = GatewayConfig(max_queue_depth=2, admission="reject")
        gateway = AsyncShardedGateway(batcher, config)

        async def drive():
            # Dispatcher not started: the queue can only fill up.
            gateway._running = True
            submitted = [
                asyncio.ensure_future(gateway.predict("tenant", test.record(0)))
                for _ in range(2)
            ]
            await asyncio.sleep(0)
            with pytest.raises(GatewayOverloaded):
                await gateway.predict("tenant", test.record(0))
            for future in submitted:
                future.cancel()

        asyncio.run(drive())
        assert gateway.stats.n_rejected == 1
        assert gateway.stats.n_accepted == 2

    def test_block_mode_applies_backpressure_until_drained(
        self, batcher, engine, income_split
    ):
        _, test = income_split
        config = GatewayConfig(max_queue_depth=1, admission="block")
        probes = [test.record(row) for row in range(6)]
        expected = [engine.predict(probe.values) for probe in probes]

        async def drive():
            async with AsyncShardedGateway(batcher, config) as gateway:
                labels = await asyncio.gather(
                    *[gateway.predict("tenant", probe) for probe in probes]
                )
                return labels, gateway.stats

        labels, stats = asyncio.run(drive())
        assert labels == expected
        assert stats.n_rejected == 0
        assert stats.queue_high_water["tenant"] == 1

    def test_per_tenant_queues_and_accounting(self, batcher, income_split):
        _, test = income_split

        async def drive():
            async with AsyncShardedGateway(batcher) as gateway:
                await asyncio.gather(
                    *[
                        gateway.predict(f"tenant-{row % 3}", test.record(row))
                        for row in range(9)
                    ]
                )
                return gateway.stats

        stats = asyncio.run(drive())
        assert stats.accepted_per_tenant() == {
            "tenant-0": 3,
            "tenant-1": 3,
            "tenant-2": 3,
        }
        assert stats.n_dispatched == 9
