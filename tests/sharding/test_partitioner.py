"""Deterministic hash routing: stability, order preservation, balance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataprep.dataset import Record
from repro.sharding.partitioner import HashPartitioner, PartitionStats


class TestHashPartitioner:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="n_shards"):
            HashPartitioner(0)

    def test_routing_is_deterministic_across_instances(self):
        record = Record(values=(3, 1, 2), label=1)
        first = HashPartitioner(8, salt=42).shard_of_record(record)
        second = HashPartitioner(8, salt=42).shard_of_record(record)
        assert first == second

    def test_salt_changes_routing_for_some_records(self):
        records = [Record(values=(a, b, 0), label=a % 2) for a in range(8) for b in range(8)]
        plain = HashPartitioner(4, salt=0)
        salted = HashPartitioner(4, salt=99)
        assert any(
            plain.shard_of_record(record) != salted.shard_of_record(record)
            for record in records
        )

    def test_scalar_and_vectorised_routing_agree(self, income_small):
        partitioner = HashPartitioner(5, salt=7)
        matrix = income_small.feature_matrix()
        vectorised = partitioner.shards_of_matrix(matrix, income_small.labels)
        for row in range(0, income_small.n_rows, 37):
            assert vectorised[row] == partitioner.shard_of_record(
                income_small.record(row)
            )

    def test_partition_covers_every_row_exactly_once(self, income_small):
        partitions = HashPartitioner(4).partition(income_small)
        combined = np.sort(np.concatenate(partitions))
        assert np.array_equal(combined, np.arange(income_small.n_rows))

    def test_partition_preserves_original_row_order(self, income_small):
        for rows in HashPartitioner(3).partition(income_small):
            assert np.all(np.diff(rows) > 0)

    def test_single_shard_partition_is_identity(self, income_small):
        (rows,) = HashPartitioner(1).partition(income_small)
        assert np.array_equal(rows, np.arange(income_small.n_rows))

    def test_partition_is_reasonably_balanced(self, income_small):
        stats = HashPartitioner(4).partition_stats(income_small)
        assert stats.n_rows == income_small.n_rows
        assert stats.max_over_mean < 1.5

    def test_equality_is_structural(self):
        assert HashPartitioner(4, salt=1) == HashPartitioner(4, salt=1)
        assert HashPartitioner(4, salt=1) != HashPartitioner(4, salt=2)
        assert HashPartitioner(4) != HashPartitioner(8)

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=8),
        label=st.integers(min_value=0, max_value=1),
        n_shards=st.integers(min_value=1, max_value=16),
    )
    def test_routing_is_a_pure_content_function(self, values, label, n_shards):
        """Duplicates land together and routing needs no training-time state."""
        partitioner = HashPartitioner(n_shards)
        record = Record(values=tuple(values), label=label)
        duplicate = Record(values=tuple(values), label=label)
        shard = partitioner.shard_of_record(record)
        assert 0 <= shard < n_shards
        assert partitioner.shard_of_record(duplicate) == shard
        matrix = np.asarray([values], dtype=np.int64)
        assert partitioner.shards_of_matrix(matrix, [label])[0] == shard


class TestPartitionStats:
    def test_perfect_balance(self):
        stats = PartitionStats(shard_sizes=(10, 10, 10))
        assert stats.imbalance == 0.0
        assert stats.max_over_mean == 1.0

    def test_imbalance_grows_with_skew(self):
        even = PartitionStats(shard_sizes=(10, 10, 10, 10))
        skewed = PartitionStats(shard_sizes=(37, 1, 1, 1))
        assert skewed.imbalance > even.imbalance
        assert skewed.max_over_mean > 2.0

    def test_empty_sizes_are_safe(self):
        stats = PartitionStats(shard_sizes=(0, 0))
        assert stats.imbalance == 0.0
        assert stats.max_over_mean == 1.0
