"""Shard-aware micro-batching: partial flushes, ordering, coalescing."""

from __future__ import annotations

import pytest

from repro.serving.microbatch import FLUSH_FORCED, FLUSH_FULL, MicroBatchConfig
from repro.sharding.microbatch import FLUSH_SHARD, ShardedMicroBatcher
from repro.sharding.service import ShardedServingEngine
from repro.sharding.store import ShardedModelStore


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


@pytest.fixture()
def engine(sharded_model, tmp_path):
    store = ShardedModelStore(tmp_path / "store", n_shards=4)
    service = ShardedServingEngine(sharded_model, store)
    yield service
    service.close()


@pytest.fixture()
def batcher(engine):
    return ShardedMicroBatcher(
        engine, MicroBatchConfig(max_batch=64, max_delay_ms=10_000.0), clock=FakeClock()
    )


def records_for_shard(engine, dataset, shard, count, start=0):
    """The first ``count`` training records owned by ``shard``."""
    picked = []
    for row in range(start, dataset.n_rows):
        record = dataset.record(row)
        if engine.owning_shard(record) == shard:
            picked.append(record)
            if len(picked) == count:
                return picked
    raise AssertionError(f"not enough records for shard {shard}")


class TestPredictionBatching:
    def test_results_match_direct_engine_answers(self, batcher, engine, income_split):
        _, test = income_split
        handles = [batcher.submit_predict(test.record(row)) for row in range(8)]
        proba_handle = batcher.submit_predict_proba(test.record(9))
        assert batcher.n_queued == 9
        batcher.flush()
        for row, handle in enumerate(handles):
            assert handle.result() == engine.predict(test.record(row).values)
        assert proba_handle.result() == pytest.approx(
            engine.predict_proba(test.record(9).values)
        )

    def test_full_window_dispatches_itself(self, engine, income_split):
        _, test = income_split
        batcher = ShardedMicroBatcher(
            engine, MicroBatchConfig(max_batch=4, max_delay_ms=10_000.0)
        )
        handles = [batcher.submit_predict(test.record(row)) for row in range(4)]
        assert batcher.n_queued == 0
        assert all(handle.done for handle in handles)
        assert batcher.stats.flush_reasons[FLUSH_FULL] == 1

    def test_result_forces_flush(self, batcher, engine, income_split):
        _, test = income_split
        handle = batcher.submit_predict(test.record(0))
        assert not handle.done
        assert handle.result() == engine.predict(test.record(0).values)
        assert batcher.stats.flush_reasons[FLUSH_FORCED] == 1


class TestShardScopedFlush:
    def test_deletion_only_flushes_owning_shard_window(
        self, batcher, engine, income_split
    ):
        """The satellite fix: shard i's deletion leaves shards j != i alone."""
        train, test = income_split
        for row in range(6):
            batcher.submit_predict(test.record(row))
        (record,) = records_for_shard(engine, train, shard=2, count=1)
        batcher.submit_unlearn("del-1", record)
        # Shard 2 contributed to all six pending rows; the others did not.
        for shard in range(engine.n_shards):
            expected = 0 if shard == 2 else 6
            assert batcher.shard_pending_rows(shard) == expected
        assert batcher.n_queued == 6  # predictions still pending
        assert batcher.stats.flush_reasons[FLUSH_SHARD] == 1
        assert batcher.stats.partial_flushes == {2: 1}
        assert batcher.stats.partial_rows == {2: 6}

    def test_prediction_before_deletion_does_not_observe_it(
        self, batcher, engine, income_split
    ):
        train, test = income_split
        probe = test.record(0)
        expected = engine.predict_proba(probe.values)
        handle = batcher.submit_predict_proba(probe)
        # Enough deletions on the probe's heaviest-voting shard to plausibly
        # move the probability if ordering were violated.
        shard = engine.owning_shard(train.record(0))
        for position, record in enumerate(
            records_for_shard(engine, train, shard=shard, count=5)
        ):
            batcher.submit_unlearn(f"del-{position}", record)
        batcher.flush_unlearns()
        batcher.flush()
        assert handle.result() == pytest.approx(expected)

    def test_prediction_after_deletion_observes_it(self, batcher, engine, income_split):
        train, test = income_split
        (record,) = records_for_shard(engine, train, shard=1, count=1)
        unlearn_handle = batcher.submit_unlearn("del-1", record)
        # Submitting a prediction drains every queued deletion window first.
        batcher.submit_predict(test.record(0))
        assert unlearn_handle.done
        assert batcher.n_queued_unlearns() == 0

    def test_deletions_coalesce_per_shard(self, batcher, engine, income_split):
        train, _ = income_split
        shard_1 = records_for_shard(engine, train, shard=1, count=3)
        shard_3 = records_for_shard(engine, train, shard=3, count=2)
        handles = [
            batcher.submit_unlearn(f"del-{position}", record)
            for position, record in enumerate(shard_1 + shard_3)
        ]
        assert batcher.n_queued_unlearns(1) == 3
        assert batcher.n_queued_unlearns(3) == 2
        batcher.flush_unlearns()
        # One group-committed batch per shard, not one per request.
        assert batcher.stats.n_unlearn_batches == 2
        assert batcher.stats.unlearn_batch_sizes[1] == [3]
        assert batcher.stats.unlearn_batch_sizes[3] == [2]
        entries = {handle.result().request_id for handle in handles}
        assert len(entries) == 2  # one audit entry per shard batch

    def test_single_shard_flush_leaves_other_windows_queued(
        self, batcher, engine, income_split
    ):
        train, _ = income_split
        (record_1,) = records_for_shard(engine, train, shard=1, count=1)
        (record_3,) = records_for_shard(engine, train, shard=3, count=1)
        handle_1 = batcher.submit_unlearn("del-1", record_1)
        handle_3 = batcher.submit_unlearn("del-3", record_3)
        assert handle_1.result().shard_id == 1  # forces shard 1 only
        assert not handle_3.done
        assert batcher.n_queued_unlearns(3) == 1

    def test_overrun_flag_change_closes_the_shard_window(
        self, batcher, engine, income_split
    ):
        train, _ = income_split
        records = records_for_shard(engine, train, shard=0, count=2)
        first = batcher.submit_unlearn("del-a", records[0], allow_budget_overrun=True)
        batcher.submit_unlearn("del-b", records[1], allow_budget_overrun=False)
        assert first.done  # the flag change flushed the open window
        assert batcher.n_queued_unlearns(0) == 1


class TestMixedWindowCorrectness:
    def test_interleaved_stream_matches_serial_execution(
        self, engine, sharded_model_session, income_split, tmp_path
    ):
        """Batched answers equal a serial replay of the same request stream."""
        import copy

        train, test = income_split
        serial_model = copy.deepcopy(sharded_model_session)
        batcher = ShardedMicroBatcher(
            engine, MicroBatchConfig(max_batch=64, max_delay_ms=10_000.0)
        )
        prediction_handles = []
        expected = []
        deletions = iter(range(50, 80))
        for step in range(24):
            if step % 4 == 3:
                record = train.record(next(deletions))
                batcher.submit_unlearn(
                    f"del-{step}", record, allow_budget_overrun=True
                )
                serial_model.unlearn(record, allow_budget_overrun=True)
            else:
                probe = test.record(step % test.n_rows)
                prediction_handles.append(
                    (batcher.submit_predict_proba(probe), len(expected))
                )
                expected.append(serial_model.predict_proba(probe.values))
        batcher.flush_unlearns()
        batcher.flush()
        for handle, position in prediction_handles:
            assert handle.result() == pytest.approx(expected[position])
