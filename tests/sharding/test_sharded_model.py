"""ShardedHedgeCut: K=1 bit-identity, routed deletions, aggregation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ensemble import HedgeCutClassifier
from repro.core.exceptions import NotFittedError
from repro.datasets.registry import load_dataset
from repro.evaluation.splits import train_test_split
from repro.sharding.model import ShardedHedgeCut
from repro.sharding.partitioner import HashPartitioner


class TestConstruction:
    def test_rejects_indivisible_tree_budget(self):
        with pytest.raises(ValueError, match="divisible"):
            ShardedHedgeCut(n_shards=3, n_trees=8)

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardedHedgeCut(n_shards=0, n_trees=8)

    def test_tree_budget_splits_evenly(self):
        model = ShardedHedgeCut(n_shards=4, n_trees=8, seed=1)
        assert [shard.params.n_trees for shard in model.shards] == [2, 2, 2, 2]
        assert model.n_trees == 8

    def test_predict_requires_fit(self):
        model = ShardedHedgeCut(n_shards=2, n_trees=4, seed=1)
        with pytest.raises(NotFittedError):
            model.predict((0, 0, 0))

    def test_from_shards_validates_count_and_tree_parity(self, fitted_model):
        with pytest.raises(ValueError, match="shard models"):
            ShardedHedgeCut.from_shards([fitted_model], HashPartitioner(2))
        other = HedgeCutClassifier(n_trees=fitted_model.params.n_trees + 1, seed=1)
        with pytest.raises(ValueError, match="equally many trees"):
            ShardedHedgeCut.from_shards([fitted_model, other], HashPartitioner(2))


@pytest.mark.parametrize("dataset_name", ["income", "heart"])
class TestSingleShardBitIdentity:
    """The K=1 guarantee on two registry datasets: sharding is a no-op."""

    @pytest.fixture()
    def split(self, dataset_name):
        dataset = load_dataset(dataset_name, n_rows=400, seed=13)
        return train_test_split(dataset, test_fraction=0.25, seed=13)

    def test_predict_proba_bit_identical(self, split):
        train, test = split
        base = HedgeCutClassifier(n_trees=6, seed=21).fit(train)
        sharded = ShardedHedgeCut(n_shards=1, n_trees=6, seed=21).fit(train)
        matrix = test.feature_matrix()
        assert np.array_equal(
            base.predict_proba_rows(matrix), sharded.predict_proba_rows(matrix)
        )

    def test_labels_and_votes_bit_identical(self, split):
        train, test = split
        base = HedgeCutClassifier(n_trees=6, seed=21).fit(train)
        sharded = ShardedHedgeCut(n_shards=1, n_trees=6, seed=21).fit(train)
        matrix = test.feature_matrix()
        assert np.array_equal(base.predict_rows(matrix), sharded.predict_rows(matrix))
        assert np.array_equal(
            base.predict_votes_rows(matrix), sharded.predict_votes_rows(matrix)
        )


class TestAggregation:
    def test_votes_sum_over_shards(self, sharded_model_session, income_split):
        _, test = income_split
        matrix = test.feature_matrix()
        summed = sum(
            shard.predict_votes_rows(matrix)
            for shard in sharded_model_session.shards
        )
        assert np.array_equal(
            sharded_model_session.predict_votes_rows(matrix), summed
        )

    def test_labels_follow_global_majority(self, sharded_model_session, income_split):
        _, test = income_split
        matrix = test.feature_matrix()
        votes = sharded_model_session.predict_votes_rows(matrix)
        expected = (2 * votes > sharded_model_session.n_trees).astype(np.uint8)
        assert np.array_equal(sharded_model_session.predict_rows(matrix), expected)

    def test_proba_is_mean_of_shard_probas(self, sharded_model_session, income_split):
        _, test = income_split
        matrix = test.feature_matrix()
        stacked = np.stack(
            [
                shard.predict_proba_rows(matrix)
                for shard in sharded_model_session.shards
            ]
        )
        np.testing.assert_allclose(
            sharded_model_session.predict_proba_rows(matrix),
            stacked.mean(axis=0),
            rtol=1e-12,
        )

    def test_scalar_paths_match_row_paths(self, sharded_model_session, income_split):
        _, test = income_split
        record = test.record(0)
        matrix = test.feature_matrix()[:1]
        assert sharded_model_session.predict(record) == int(
            sharded_model_session.predict_rows(matrix)[0]
        )
        assert sharded_model_session.predict_proba(record) == pytest.approx(
            float(sharded_model_session.predict_proba_rows(matrix)[0])
        )

    def test_partition_stats_cover_training_set(
        self, sharded_model_session, income_split
    ):
        train, _ = income_split
        stats = sharded_model_session.partition_stats
        assert stats.n_rows == train.n_rows
        assert stats.n_shards == 4


class TestRoutedUnlearning:
    def test_deletion_touches_only_owning_shard(self, sharded_model, income_split):
        train, _ = income_split
        record = train.record(7)
        owner = sharded_model.owning_shard(record)
        before = [shard.n_unlearned for shard in sharded_model.shards]
        sharded_model.unlearn(record)
        after = [shard.n_unlearned for shard in sharded_model.shards]
        assert after[owner] == before[owner] + 1
        for shard_id in range(sharded_model.n_shards):
            if shard_id != owner:
                assert after[shard_id] == before[shard_id]

    @settings(max_examples=15, deadline=None)
    @given(row=st.integers(min_value=0, max_value=299))
    def test_routing_property_only_owner_changes(
        self, sharded_model_session, income_split, row
    ):
        """For any training row, deletion changes exactly the owning shard."""
        import copy

        model = copy.deepcopy(sharded_model_session)
        train, _ = income_split
        record = train.record(row % train.n_rows)
        owner = model.owning_shard(record)
        trained_on = [shard.n_trained_on for shard in model.shards]
        report = model.unlearn(record, allow_budget_overrun=True)
        assert report.leaves_updated >= 0
        for shard_id, shard in enumerate(model.shards):
            if shard_id == owner:
                assert shard.n_unlearned == 1
            else:
                assert shard.n_unlearned == 0
                assert shard.n_trained_on == trained_on[shard_id]

    def test_batch_splits_by_shard_and_merges_reports(
        self, sharded_model, income_split
    ):
        train, _ = income_split
        records = [train.record(row) for row in range(12)]
        groups = sharded_model.group_by_shard(records)
        assert sum(len(positions) for positions in groups.values()) == len(records)
        report = sharded_model.unlearn_batch(records, allow_budget_overrun=True)
        assert report.leaves_updated > 0
        assert sharded_model.n_unlearned == len(records)
        for shard_id, positions in groups.items():
            assert sharded_model.shards[shard_id].n_unlearned == len(positions)

    def test_budgets_sum_over_shards(self, sharded_model):
        assert sharded_model.deletion_budget == sum(
            shard.deletion_budget for shard in sharded_model.shards
        )
        assert sharded_model.remaining_deletion_budget == sum(
            shard.remaining_deletion_budget for shard in sharded_model.shards
        )


class TestShardSeeds:
    def test_shards_are_decorrelated(self, income_split):
        train, _ = income_split
        model = ShardedHedgeCut(n_shards=2, n_trees=4, seed=9).fit(train)
        first, second = model.shards
        assert first.params.seed != second.params.seed

    def test_shard_zero_keeps_base_seed(self):
        model = ShardedHedgeCut(n_shards=4, n_trees=8, seed=123)
        assert model.shards[0].params.seed == 123
