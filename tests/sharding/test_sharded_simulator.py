"""Sharded serving simulator: replay, per-shard accounting, budget skips."""

from __future__ import annotations

import pytest

from repro.serving.workload import WorkloadProfile, generate_workload
from repro.sharding.simulator import ShardedServingSimulator


@pytest.fixture()
def simulator(sharded_model, income_split):
    train, test = income_split
    pool = [train.record(row) for row in range(60)]
    return ShardedServingSimulator(
        sharded_model, test, unlearn_pool=pool, batch_size=16
    )


def test_replays_a_stormy_workload(simulator, income_split):
    _, test = income_split
    profile = WorkloadProfile(
        n_requests=120,
        base_unlearn_fraction=0.02,
        n_storms=1,
        storm_length=15,
        storm_unlearn_fraction=0.6,
        max_user_size=4,
    )
    workload = generate_workload(
        profile, n_prediction_rows=test.n_rows, n_deletable=20, seed=9
    )
    report = simulator.run(workload)
    assert report.n_predictions == workload.n_predictions
    assert report.n_deletions + report.n_budget_skipped == workload.n_deletions
    assert report.n_batches >= 1
    assert report.total_seconds > 0
    assert report.rows_per_second > 0


def test_per_shard_latency_and_balance(simulator, income_split):
    _, test = income_split
    profile = WorkloadProfile(
        n_requests=80, base_unlearn_fraction=0.3, max_user_size=2
    )
    workload = generate_workload(
        profile, n_prediction_rows=test.n_rows, n_deletable=16, seed=10
    )
    report = simulator.run(workload)
    assert report.n_deletions > 0
    assert sum(report.shard_deletions.values()) == report.n_deletions
    balance = report.deletion_balance
    assert balance.n_shards == 4
    assert balance.n_rows == report.n_deletions
    overall_p50 = report.unlearn_latency_percentile(50)
    assert overall_p50 > 0
    for shard in report.shard_unlearn_latencies_us:
        assert report.shard_latency_percentile(shard, 99) >= 0

    with pytest.raises(ValueError, match="no deletion latencies"):
        report.shard_latency_percentile(99, 50)


def test_budget_exhaustion_is_skipped_not_fatal(sharded_model, income_split):
    train, test = income_split
    budget = sharded_model.remaining_deletion_budget
    pool = [train.record(row) for row in range(min(budget * 3, train.n_rows))]
    simulator = ShardedServingSimulator(
        sharded_model, test, unlearn_pool=pool, batch_size=16
    )
    profile = WorkloadProfile(
        n_requests=60, base_unlearn_fraction=0.9, max_user_size=32
    )
    workload = generate_workload(
        profile, n_prediction_rows=test.n_rows, n_deletable=len(pool), seed=11
    )
    report = simulator.run(workload)  # must not raise
    assert report.n_deletions <= budget
