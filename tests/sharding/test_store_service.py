"""Per-shard durability: manifest, shard tagging, crash recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import HedgeCutError
from repro.persistence.wal import WriteAheadLog
from repro.sharding.model import ShardedHedgeCut
from repro.sharding.service import ShardedServingEngine
from repro.sharding.store import ShardedModelStore


@pytest.fixture()
def service(sharded_model, tmp_path):
    store = ShardedModelStore(tmp_path / "store", n_shards=4)
    engine = ShardedServingEngine(sharded_model, store)
    yield engine
    engine.close()


class TestShardedModelStore:
    def test_creates_manifest_and_shard_namespaces(self, tmp_path):
        store = ShardedModelStore(tmp_path / "s", n_shards=3, partitioner_salt=9)
        try:
            assert ShardedModelStore.exists(tmp_path / "s")
            assert len(store.shard_stores) == 3
            for shard in range(3):
                assert store.shard_directory(shard).is_dir()
            assert store.partitioner().salt == 9
        finally:
            store.close()

    def test_reopen_validates_shard_count(self, tmp_path):
        ShardedModelStore(tmp_path / "s", n_shards=4).close()
        with pytest.raises(HedgeCutError, match="partitioned 4 ways"):
            ShardedModelStore(tmp_path / "s", n_shards=8)

    def test_reopen_validates_salt(self, tmp_path):
        ShardedModelStore(tmp_path / "s", n_shards=2, partitioner_salt=1).close()
        with pytest.raises(HedgeCutError, match="salt"):
            ShardedModelStore(tmp_path / "s", partitioner_salt=2)

    def test_open_without_manifest_requires_shard_count(self, tmp_path):
        with pytest.raises(HedgeCutError, match="n_shards"):
            ShardedModelStore(tmp_path / "nothing-here")

    def test_snapshot_roundtrip(self, sharded_model, income_split, tmp_path):
        _, test = income_split
        matrix = test.feature_matrix()
        expected = sharded_model.predict_proba_rows(matrix)
        with ShardedModelStore(tmp_path / "s", n_shards=4) as store:
            store.save_snapshots(sharded_model)
        with ShardedModelStore(tmp_path / "s") as store:
            recovered = store.recover()
        assert recovered.model.n_shards == 4
        assert np.array_equal(recovered.model.predict_proba_rows(matrix), expected)

    def test_snapshot_rejects_mismatched_model(self, income_split, tmp_path):
        train, _ = income_split
        model = ShardedHedgeCut(n_shards=2, n_trees=4, seed=1).fit(train)
        with ShardedModelStore(tmp_path / "s", n_shards=4) as store:
            with pytest.raises(HedgeCutError, match="shards"):
                store.save_snapshots(model)


class TestShardedServingEngine:
    def test_rejects_routing_mismatch(self, sharded_model, tmp_path):
        store = ShardedModelStore(tmp_path / "s", n_shards=4, partitioner_salt=77)
        try:
            with pytest.raises(HedgeCutError, match="routing"):
                ShardedServingEngine(sharded_model, store)
        finally:
            store.close()

    def test_unlearn_routes_and_tags_audit_entry(self, service, income_split):
        train, _ = income_split
        record = train.record(3)
        owner = service.owning_shard(record)
        entry = service.unlearn("req-1", record)
        assert entry.shard_id == owner
        assert service.evidence_for("req-1").shard_id == owner

    def test_batch_splits_into_per_shard_frames(self, service, income_split):
        train, _ = income_split
        records = [train.record(row) for row in range(10)]
        entries = service.unlearn_batch("req-batch", records)
        touched = {entry.shard_id for entry in entries}
        expected = set(service.model.group_by_shard(records))
        assert touched == expected
        assert sum(entry.n_records for entry in entries) == len(records)
        for entry in entries:
            if len(entries) > 1:
                assert entry.request_id.endswith(f"/shard-{entry.shard_id}")

    def test_wal_frames_carry_shard_ids(self, service, income_split):
        train, _ = income_split
        record = train.record(5)
        owner = service.owning_shard(record)
        service.unlearn("req-wal", record)
        wal_dir = service.store.shard_directory(owner) / "wal"
        with WriteAheadLog(wal_dir) as wal:
            records = list(wal.records())
        assert records
        assert records[-1].shard_id == owner

    def test_predictions_aggregate_like_the_model(self, service, income_split):
        _, test = income_split
        matrix = test.feature_matrix()
        assert np.array_equal(
            service.predict_rows(matrix), service.model.predict_rows(matrix)
        )
        assert np.array_equal(
            service.predict_proba_rows(matrix),
            service.model.predict_proba_rows(matrix),
        )


class TestCrashRecoveryMidCampaign:
    def test_recovery_replays_unsnapshotted_deletions(
        self, sharded_model, income_split, tmp_path
    ):
        """Crash in the middle of a deletion campaign: snapshot + WAL tail."""
        train, test = income_split
        matrix = test.feature_matrix()
        directory = tmp_path / "store"

        store = ShardedModelStore(directory, n_shards=4)
        engine = ShardedServingEngine(sharded_model, store)
        engine.snapshot()
        # The campaign: some deletions after the snapshot, spread over
        # shards, the last few via the batched path.
        campaign = [train.record(row) for row in range(20, 32)]
        for position, record in enumerate(campaign[:6]):
            engine.unlearn(f"campaign-{position}", record)
        engine.unlearn_batch("campaign-batch", campaign[6:])
        expected_proba = engine.predict_proba_rows(matrix)
        expected_unlearned = engine.model.n_unlearned
        # Simulated crash: the store is reopened without a new snapshot.
        engine.close()

        with ShardedModelStore(directory) as reopened:
            recovered = ShardedServingEngine.recover(reopened)
            try:
                assert recovered.model.n_unlearned == expected_unlearned
                assert np.array_equal(
                    recovered.predict_proba_rows(matrix), expected_proba
                )
                # The replay actually did work on every shard the campaign hit.
                touched = set(
                    sharded_model.group_by_shard(campaign)
                )
                replayed_shards = {
                    shard_id
                    for shard_id, shard in enumerate(recovered.model.shards)
                    if shard.n_unlearned > 0
                }
                assert replayed_shards == touched
            finally:
                recovered.close()

    def test_recovered_service_keeps_serving_deletions(
        self, sharded_model, income_split, tmp_path
    ):
        train, _ = income_split
        directory = tmp_path / "store"
        store = ShardedModelStore(directory, n_shards=4)
        engine = ShardedServingEngine(sharded_model, store)
        engine.snapshot()
        engine.unlearn("before-crash", train.record(40))
        engine.close()

        with ShardedModelStore(directory) as reopened:
            recovered = ShardedServingEngine.recover(reopened)
            try:
                entry = recovered.unlearn("after-crash", train.record(41))
                assert entry.shard_id == recovered.owning_shard(train.record(41))
                assert recovered.model.n_unlearned == 2
            finally:
                recovered.close()
