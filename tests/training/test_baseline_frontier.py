"""Equivalence of the baseline frontier cores against the recursive builders.

CART without feature subsampling draws no random numbers, so the frontier
core must grow a *bit-identical* tree. The randomised learners (CART with
``max_features="sqrt"``, Random Forest, classic ERT) consume their
generators in breadth-first instead of depth-first order and are compared
on aggregate structure and held-out behaviour instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.cart import DecisionTreeClassifier
from repro.baselines.ert import ExtraTreesClassifier
from repro.baselines.forest import RandomForestClassifier
from repro.baselines.tree_common import BaselineLeaf, BaselineSplit

from tests.conftest import make_random_dataset


def trees_identical(a, b) -> bool:
    """Structural equality of two baseline trees."""
    stack = [(a, b)]
    while stack:
        left, right = stack.pop()
        if type(left) is not type(right):
            return False
        if isinstance(left, BaselineLeaf):
            if (left.n, left.n_plus) != (right.n, right.n_plus):
                return False
        else:
            assert isinstance(left, BaselineSplit)
            if (left.feature, left.threshold) != (right.feature, right.threshold):
                return False
            stack.append((left.left, right.left))
            stack.append((left.right, right.right))
    return True


class TestCartFrontier:
    def test_rejects_unknown_trainer(self):
        with pytest.raises(ValueError, match="trainer"):
            DecisionTreeClassifier(trainer="bogus")

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exhaustive_cart_is_bit_identical(self, seed):
        """No feature subsampling -> no RNG -> identical trees."""
        dataset = make_random_dataset(n_rows=300, seed=seed)
        recursive = DecisionTreeClassifier().fit(dataset)
        frontier = DecisionTreeClassifier(trainer="frontier").fit(dataset)
        assert trees_identical(recursive._root, frontier._root)

    def test_exhaustive_cart_identical_on_income(self, income_small):
        recursive = DecisionTreeClassifier(min_samples_leaf=2).fit(income_small)
        frontier = DecisionTreeClassifier(
            min_samples_leaf=2, trainer="frontier"
        ).fit(income_small)
        assert trees_identical(recursive._root, frontier._root)

    def test_depth_cap_respected_and_identical(self, income_small):
        recursive = DecisionTreeClassifier(max_depth=4).fit(income_small)
        frontier = DecisionTreeClassifier(max_depth=4, trainer="frontier").fit(
            income_small
        )
        assert trees_identical(recursive._root, frontier._root)

    def test_subsampled_cart_accuracy_parity(self, income_small):
        labels = income_small.labels
        accs = {}
        for trainer in ("recursive", "frontier"):
            fits = [
                DecisionTreeClassifier(
                    max_features="sqrt", trainer=trainer, seed=seed
                ).fit(income_small)
                for seed in range(5)
            ]
            accs[trainer] = np.mean(
                [(t.predict_batch(income_small) == labels).mean() for t in fits]
            )
        assert abs(accs["recursive"] - accs["frontier"]) < 0.05


class TestErtFrontier:
    def test_rejects_unknown_trainer(self):
        with pytest.raises(ValueError, match="trainer"):
            ExtraTreesClassifier(trainer="bogus")

    def test_accuracy_parity(self, income_small):
        labels = income_small.labels
        recursive = ExtraTreesClassifier(n_estimators=8, seed=7).fit(income_small)
        frontier = ExtraTreesClassifier(
            n_estimators=8, trainer="frontier", seed=7
        ).fit(income_small)
        acc_rec = (recursive.predict_batch(income_small) == labels).mean()
        acc_fro = (frontier.predict_batch(income_small) == labels).mean()
        assert abs(acc_rec - acc_fro) < 0.06

    def test_aggregate_leaf_counts_match(self):
        dataset = make_random_dataset(n_rows=300, seed=33)

        def leaves(root) -> int:
            count, stack = 0, [root]
            while stack:
                node = stack.pop()
                if isinstance(node, BaselineLeaf):
                    count += 1
                else:
                    stack.extend((node.left, node.right))
            return count

        rec, fro = [], []
        for seed in range(6):
            rec.append(
                np.mean(
                    [
                        leaves(root)
                        for root in ExtraTreesClassifier(n_estimators=3, seed=seed)
                        .fit(dataset)
                        ._trees
                    ]
                )
            )
            fro.append(
                np.mean(
                    [
                        leaves(root)
                        for root in ExtraTreesClassifier(
                            n_estimators=3, trainer="frontier", seed=100 + seed
                        )
                        .fit(dataset)
                        ._trees
                    ]
                )
            )
        assert np.mean(fro) == pytest.approx(np.mean(rec), rel=0.15)


class TestForestFrontier:
    def test_rejects_unknown_trainer(self):
        with pytest.raises(ValueError, match="trainer"):
            RandomForestClassifier(trainer="bogus")

    def test_accuracy_parity(self, income_small):
        labels = income_small.labels
        recursive = RandomForestClassifier(n_estimators=6, seed=5).fit(income_small)
        frontier = RandomForestClassifier(
            n_estimators=6, trainer="frontier", seed=5
        ).fit(income_small)
        acc_rec = (recursive.predict_batch(income_small) == labels).mean()
        acc_fro = (frontier.predict_batch(income_small) == labels).mean()
        assert abs(acc_rec - acc_fro) < 0.06
