"""Equivalence suite for the level-synchronous HedgeCut frontier trainer.

The frontier trainer consumes random draws in breadth-first instead of
depth-first order, so fitted trees cannot be compared node-by-node against
the recursive reference for a shared seed. Equivalence is established in
layers instead:

* every structural invariant of a recursive-built tree holds for a
  frontier-built tree (statistics consistent along every edge),
* aggregate structure and held-out behaviour match the recursive builder
  across seeds and across the dataset registry (slow-marked matrix),
* the per-pair robustness verdicts are *bit-identical* by construction
  (``tests/core/test_robustness.py`` checks the batched weakening loop
  against the scalar ``is_robust``),
* unlearning works on frontier-built models exactly as on recursive ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ensemble import HedgeCutClassifier
from repro.core.nodes import Leaf, MaintenanceNode, SplitNode
from repro.core.params import HedgeCutParams
from repro.core.tree import TreeBuilder
from repro.datasets.registry import available_datasets, load_dataset
from repro.evaluation.splits import train_test_split
from repro.training import build_tree
from repro.training.frontier import FrontierTreeBuilder

from tests.conftest import make_random_dataset


def check_node(node) -> tuple[int, int]:
    """Validate subtree statistics bottom-up; returns ``(n, n_plus)``."""
    if isinstance(node, Leaf):
        assert node.n >= 0 and 0 <= node.n_plus <= node.n
        return node.n, node.n_plus
    if isinstance(node, SplitNode):
        left_n, left_plus = check_node(node.left)
        right_n, right_plus = check_node(node.right)
        assert node.stats.n == left_n + right_n
        assert node.stats.n_plus == left_plus + right_plus
        assert node.stats.n_left == left_n
        assert node.stats.n_left_plus == left_plus
        return node.stats.n, node.stats.n_plus
    assert isinstance(node, MaintenanceNode)
    totals = set()
    for variant in node.variants:
        left_n, left_plus = check_node(variant.left)
        right_n, right_plus = check_node(variant.right)
        assert variant.stats.n == left_n + right_n
        assert variant.stats.n_plus == left_plus + right_plus
        assert variant.stats.n_left == left_n
        assert variant.stats.n_left_plus == left_plus
        assert variant.gain == pytest.approx(variant.stats.gini_gain())
        totals.add((variant.stats.n, variant.stats.n_plus))
    # Every variant partitions the same record multiset.
    assert len(totals) == 1
    return totals.pop()


class TestFrontierStructure:
    def test_tree_invariants_hold(self, income_small):
        params = HedgeCutParams(seed=5)
        tree = FrontierTreeBuilder(
            income_small, params, np.random.default_rng(5)
        ).build()
        n, n_plus = check_node(tree.root)
        assert n == income_small.n_rows
        assert n_plus == int(income_small.labels.sum())

    def test_counters_are_consistent(self, income_small):
        params = HedgeCutParams(seed=6)
        tree = FrontierTreeBuilder(
            income_small, params, np.random.default_rng(6)
        ).build()
        counters = tree.counters
        assert counters.leaves > 0
        assert counters.trials >= counters.robust_splits
        assert counters.variants_grown >= 2 * counters.maintenance_nodes

    def test_build_tree_dispatches_on_params(self, income_small):
        rng = np.random.default_rng(7)
        recursive = build_tree(income_small, HedgeCutParams(), rng)
        check_node(recursive.root)
        rng = np.random.default_rng(7)
        frontier = build_tree(income_small, HedgeCutParams(trainer="frontier"), rng)
        check_node(frontier.root)

    def test_rejects_unknown_trainer(self):
        with pytest.raises(ValueError, match="trainer"):
            HedgeCutParams(trainer="bogus")
        with pytest.raises(ValueError, match="trainer"):
            HedgeCutClassifier(trainer="bogus")


class TestFrontierEquivalence:
    def test_aggregate_structure_matches_recursive(self):
        """Mean structural counters agree across seeds (same distribution)."""
        dataset = make_random_dataset(n_rows=400, seed=21)
        params = HedgeCutParams()
        rec_leaves, fro_leaves = [], []
        rec_splits, fro_splits = [], []
        for seed in range(10):
            rec = TreeBuilder(dataset, params, np.random.default_rng(seed)).build()
            fro = FrontierTreeBuilder(
                dataset, params, np.random.default_rng(100 + seed)
            ).build()
            rec_leaves.append(rec.counters.leaves)
            fro_leaves.append(fro.counters.leaves)
            rec_splits.append(rec.counters.robust_splits)
            fro_splits.append(fro.counters.robust_splits)
        assert np.mean(fro_leaves) == pytest.approx(np.mean(rec_leaves), rel=0.15)
        assert np.mean(fro_splits) == pytest.approx(np.mean(rec_splits), rel=0.15)

    def test_predict_proba_parity_on_holdout(self, income_split):
        train, test = income_split
        recursive = HedgeCutClassifier(n_trees=8, seed=31).fit(train)
        frontier = HedgeCutClassifier(n_trees=8, trainer="frontier", seed=31).fit(
            train
        )
        labels = test.labels
        acc_rec = float((recursive.predict_batch(test) == labels).mean())
        acc_fro = float((frontier.predict_batch(test) == labels).mean())
        assert abs(acc_rec - acc_fro) < 0.06
        proba_rec = recursive.predict_proba_batch(test)
        proba_fro = frontier.predict_proba_batch(test)
        # Per-record probabilities carry ~1/sqrt(n_trees) sampling noise
        # between any two independently drawn 8-tree ensembles; the
        # ensemble-level calibration is much tighter.
        assert np.abs(proba_rec - proba_fro).mean() < 0.2
        assert abs(proba_rec.mean() - proba_fro.mean()) < 0.05

    def test_pool_equals_sequential_for_frontier(self):
        dataset = make_random_dataset(n_rows=250, seed=64)
        sequential = HedgeCutClassifier(n_trees=4, trainer="frontier", seed=64).fit(
            dataset
        )
        parallel = HedgeCutClassifier(
            n_trees=4, trainer="frontier", seed=64, n_jobs=2
        ).fit(dataset)
        assert np.array_equal(
            sequential.predict_proba_batch(dataset),
            parallel.predict_proba_batch(dataset),
        )
        assert (
            sequential.node_census().n_nodes == parallel.node_census().n_nodes
        )


class TestFrontierUnlearning:
    def test_unlearning_round_trip_after_frontier_fit(self, income_small):
        model = HedgeCutClassifier(
            n_trees=4, epsilon=0.02, trainer="frontier", seed=41
        ).fit(income_small)
        budget = model.deletion_budget
        assert budget >= 2
        before = model.predict_proba_batch(income_small)
        report = model.unlearn_batch(
            [income_small.record(i) for i in range(budget)]
        )
        assert report.leaves_updated >= budget
        assert model.remaining_deletion_budget == 0
        after = model.predict_proba_batch(income_small)
        assert after.shape == before.shape
        assert np.isfinite(after).all()
        for tree in model.trees:
            check_node(tree.root)

    def test_budget_exhaustion_raises(self, income_small):
        model = HedgeCutClassifier(
            n_trees=2, epsilon=0.005, trainer="frontier", seed=42
        ).fit(income_small)
        for index in range(model.deletion_budget):
            model.unlearn(income_small.record(index))
        from repro.core.exceptions import DeletionBudgetExhausted

        with pytest.raises(DeletionBudgetExhausted):
            model.unlearn(income_small.record(model.deletion_budget))

    def test_save_load_preserves_trainer(self, income_small, tmp_path):
        model = HedgeCutClassifier(n_trees=2, trainer="frontier", seed=43).fit(
            income_small
        )
        model.save(tmp_path / "m.bin")
        restored = HedgeCutClassifier.load(tmp_path / "m.bin")
        assert restored.params.trainer == "frontier"
        assert np.array_equal(
            model.predict_proba_batch(income_small),
            restored.predict_proba_batch(income_small),
        )


@pytest.mark.slow
class TestFrontierRegistryMatrix:
    """Recursive-vs-frontier parity across the full dataset registry."""

    @pytest.mark.parametrize("name", available_datasets())
    def test_holdout_parity(self, name):
        dataset = load_dataset(name, n_rows=1500, seed=17)
        train, test = train_test_split(dataset, test_fraction=0.2, seed=17)
        recursive = HedgeCutClassifier(n_trees=6, seed=17).fit(train)
        frontier = HedgeCutClassifier(n_trees=6, trainer="frontier", seed=17).fit(
            train
        )
        labels = test.labels
        acc_rec = float((recursive.predict_batch(test) == labels).mean())
        acc_fro = float((frontier.predict_batch(test) == labels).mean())
        assert abs(acc_rec - acc_fro) < 0.08
        census_rec = recursive.node_census()
        census_fro = frontier.node_census()
        assert census_fro.n_leaves == pytest.approx(census_rec.n_leaves, rel=0.2)
        for tree in frontier.trees:
            check_node(tree.root)
