"""Property tests for the per-level histogram store.

Every derived view of :class:`LevelHistograms` is checked against a naive
per-segment scan over the same level arrays -- the histogram tensors must
be a pure re-arrangement of the underlying counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.training.histogram import LevelHistograms


def make_level(seed: int, n_slots: int = 5, n_features: int = 3):
    """A random level: per-feature codes, labels, slot starts (some empty)."""
    rng = np.random.default_rng(seed)
    sizes = rng.integers(0, 40, size=n_slots)
    total = int(sizes.sum())
    starts = np.zeros(n_slots + 1, dtype=np.int64)
    np.cumsum(sizes, out=starts[1:])
    n_values = [int(v) for v in rng.integers(2, 9, size=n_features)]
    codes = [rng.integers(0, v, size=total).astype(np.int64) for v in n_values]
    labels = rng.integers(0, 2, size=total).astype(np.int64)
    return LevelHistograms(codes, labels, starts, n_values), codes, labels, starts


class TestLevelHistograms:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_totals_and_positives_match_naive_bincount(self, seed):
        hist, codes, labels, starts = make_level(seed)
        for feature in range(hist.n_features):
            for slot in range(hist.n_slots):
                seg = slice(int(starts[slot]), int(starts[slot + 1]))
                seg_codes = codes[feature][seg]
                seg_labels = labels[seg]
                expect_t = np.bincount(seg_codes, minlength=hist.n_values[feature])
                expect_p = np.bincount(
                    seg_codes[seg_labels == 1], minlength=hist.n_values[feature]
                )
                assert np.array_equal(hist.totals[feature][slot], expect_t)
                assert np.array_equal(hist.positives[feature][slot], expect_p)

    @pytest.mark.parametrize("seed", [4, 5])
    def test_node_label_totals(self, seed):
        hist, _, labels, starts = make_level(seed)
        for slot in range(hist.n_slots):
            seg = slice(int(starts[slot]), int(starts[slot + 1]))
            assert hist.node_n[slot] == seg.stop - seg.start
            assert hist.node_plus[slot] == int(labels[seg].sum())

    @pytest.mark.parametrize("seed", [6, 7])
    def test_numeric_counts_match_scan(self, seed):
        hist, codes, labels, starts = make_level(seed)
        for feature in range(hist.n_features):
            for slot in range(hist.n_slots):
                seg = slice(int(starts[slot]), int(starts[slot + 1]))
                for cut in range(1, hist.n_values[feature]):
                    goes_left = codes[feature][seg] < cut
                    n_left, n_left_plus = hist.numeric_counts(feature, slot, cut)
                    assert n_left == int(goes_left.sum())
                    assert n_left_plus == int((goes_left & (labels[seg] == 1)).sum())

    def test_threshold_counts_match_scan(self):
        hist, codes, labels, starts = make_level(8)
        for feature in range(hist.n_features):
            cum_t, cum_p = hist.threshold_counts(feature)
            assert cum_t.shape == (hist.n_slots, hist.n_values[feature] - 1)
            for slot in range(hist.n_slots):
                seg = slice(int(starts[slot]), int(starts[slot + 1]))
                for threshold in range(hist.n_values[feature] - 1):
                    goes_left = codes[feature][seg] <= threshold
                    assert cum_t[slot, threshold] == int(goes_left.sum())
                    assert cum_p[slot, threshold] == int(
                        (goes_left & (labels[seg] == 1)).sum()
                    )

    def test_subset_counts_match_scan(self):
        hist, codes, labels, starts = make_level(9)
        rng = np.random.default_rng(99)
        for feature in range(hist.n_features):
            n_values = hist.n_values[feature]
            member = rng.random(n_values) < 0.5
            for slot in range(hist.n_slots):
                seg = slice(int(starts[slot]), int(starts[slot + 1]))
                in_subset = member[codes[feature][seg]]
                n_left, n_left_plus = hist.subset_counts(feature, slot, member)
                assert n_left == int(in_subset.sum())
                assert n_left_plus == int((in_subset & (labels[seg] == 1)).sum())

    def test_local_ranges_match_min_max(self):
        hist, codes, _, starts = make_level(10)
        for feature in range(hist.n_features):
            firsts, lasts = hist.local_ranges(feature)
            for slot in range(hist.n_slots):
                seg = slice(int(starts[slot]), int(starts[slot + 1]))
                seg_codes = codes[feature][seg]
                if seg_codes.size == 0:
                    assert firsts[slot] == 0 and lasts[slot] == -1
                else:
                    assert firsts[slot] == int(seg_codes.min())
                    assert lasts[slot] == int(seg_codes.max())

    def test_non_constant_matrix(self):
        hist, codes, _, starts = make_level(11)
        matrix = hist.non_constant_matrix()
        for feature in range(hist.n_features):
            for slot in range(hist.n_slots):
                seg = slice(int(starts[slot]), int(starts[slot + 1]))
                distinct = np.unique(codes[feature][seg]).size
                assert matrix[slot, feature] == (distinct > 1)

    def test_from_rows_gathers_global_columns(self):
        rng = np.random.default_rng(12)
        n_rows, n_features = 120, 3
        n_values = [6, 4, 8]
        columns = [rng.integers(0, v, size=n_rows).astype(np.int64) for v in n_values]
        labels = rng.integers(0, 2, size=n_rows).astype(np.int64)
        rows = rng.permutation(n_rows)[:80]
        starts = np.asarray([0, 30, 30, 80], dtype=np.int64)
        hist = LevelHistograms.from_rows(columns, labels, rows, starts, n_values)
        assert hist.rows is not None and np.array_equal(hist.rows, rows)
        for slot in range(3):
            seg_rows = rows[int(starts[slot]) : int(starts[slot + 1])]
            assert hist.node_n[slot] == seg_rows.size
            assert hist.node_plus[slot] == int(labels[seg_rows].sum())
            for feature in range(n_features):
                expect = np.bincount(
                    columns[feature][seg_rows], minlength=n_values[feature]
                )
                assert np.array_equal(hist.totals[feature][slot], expect)

    def test_segment_slices_cover_the_level(self):
        hist, _, labels, starts = make_level(13)
        covered = sum(
            hist.segment(slot).stop - hist.segment(slot).start
            for slot in range(hist.n_slots)
        )
        assert covered == labels.size
