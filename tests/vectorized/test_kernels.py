"""Equivalence and unit tests for the four scan-kernel tiers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.vectorized.kernels import (
    CATEGORICAL_KERNELS,
    NUMERIC_KERNELS,
    SplitCounts,
    numeric_counts_vectorised,
)


@st.composite
def numeric_scan_case(draw):
    n = draw(st.integers(min_value=0, max_value=120))
    codes = np.asarray(
        draw(st.lists(st.integers(0, 19), min_size=n, max_size=n)), dtype=np.uint8
    )
    labels = np.asarray(
        draw(st.lists(st.integers(0, 1), min_size=n, max_size=n)), dtype=np.uint8
    )
    cut = draw(st.integers(0, 20))
    return codes, labels, cut


@st.composite
def categorical_scan_case(draw):
    n = draw(st.integers(min_value=0, max_value=120))
    cardinality = draw(st.integers(min_value=1, max_value=16))
    codes = np.asarray(
        draw(st.lists(st.integers(0, cardinality - 1), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    labels = np.asarray(
        draw(st.lists(st.integers(0, 1), min_size=n, max_size=n)), dtype=np.uint8
    )
    mask = draw(st.integers(1, (1 << cardinality) - 1))
    return codes, labels, mask


class TestSplitCounts:
    def test_derived_counts(self):
        counts = SplitCounts(n=10, n_plus=6, n_left=4, n_left_plus=3)
        assert counts.n_right == 6
        assert counts.n_right_plus == 3

    def test_splits_data(self):
        assert SplitCounts(10, 5, 4, 2).splits_data
        assert not SplitCounts(10, 5, 0, 0).splits_data
        assert not SplitCounts(10, 5, 10, 5).splits_data


class TestNumericKernels:
    def test_known_example(self):
        codes = np.asarray([0, 3, 7, 2, 9], dtype=np.uint8)
        labels = np.asarray([1, 0, 1, 1, 0], dtype=np.uint8)
        expected = SplitCounts(n=5, n_plus=3, n_left=3, n_left_plus=2)
        for name, kernel in NUMERIC_KERNELS.items():
            assert kernel(codes, labels, 4) == expected, name

    def test_empty_input(self):
        codes = np.asarray([], dtype=np.uint8)
        labels = np.asarray([], dtype=np.uint8)
        for kernel in NUMERIC_KERNELS.values():
            assert kernel(codes, labels, 3) == SplitCounts(0, 0, 0, 0)

    @given(numeric_scan_case())
    @settings(max_examples=100, deadline=None)
    def test_all_tiers_agree(self, case):
        codes, labels, cut = case
        reference = numeric_counts_vectorised(codes, labels, cut)
        for name, kernel in NUMERIC_KERNELS.items():
            assert kernel(codes, labels, cut) == reference, name

    def test_boundary_cuts(self):
        codes = np.asarray([0, 19], dtype=np.uint8)
        labels = np.asarray([1, 1], dtype=np.uint8)
        everything_right = numeric_counts_vectorised(codes, labels, 0)
        assert everything_right.n_left == 0
        everything_left = numeric_counts_vectorised(codes, labels, 20)
        assert everything_left.n_left == 2


class TestCategoricalKernels:
    def test_known_example(self):
        codes = np.asarray([0, 1, 2, 1, 3], dtype=np.int64)
        labels = np.asarray([1, 1, 0, 0, 1], dtype=np.uint8)
        mask = 0b0110  # codes 1 and 2 go left
        expected = SplitCounts(n=5, n_plus=3, n_left=3, n_left_plus=1)
        for name, kernel in CATEGORICAL_KERNELS.items():
            assert kernel(codes, labels, mask) == expected, name

    @given(categorical_scan_case())
    @settings(max_examples=100, deadline=None)
    def test_all_tiers_agree(self, case):
        codes, labels, mask = case
        reference = CATEGORICAL_KERNELS["branching"](codes, labels, mask)
        for name, kernel in CATEGORICAL_KERNELS.items():
            assert kernel(codes, labels, mask) == reference, name

    def test_full_mask_sends_everything_left(self):
        codes = np.asarray([0, 1, 2], dtype=np.int64)
        labels = np.asarray([0, 1, 0], dtype=np.uint8)
        counts = CATEGORICAL_KERNELS["vectorised"](codes, labels, 0b111)
        assert counts.n_left == 3


class TestKernelRegistries:
    def test_registry_names(self):
        expected = {"branching", "predicated", "vectorised", "mlpack"}
        assert set(NUMERIC_KERNELS) == expected
        assert set(CATEGORICAL_KERNELS) == expected
