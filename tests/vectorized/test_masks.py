"""Tests for the bitmask subset helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.vectorized.masks import (
    bitmask_contains,
    bitmask_membership_vector,
    bitmask_to_subset,
    subset_to_bitmask,
)


class TestBitmaskPacking:
    def test_pack_and_test(self):
        mask = subset_to_bitmask([0, 3, 5])
        assert mask == 0b101001
        assert bitmask_contains(mask, 0)
        assert not bitmask_contains(mask, 1)
        assert bitmask_contains(mask, 5)

    def test_rejects_code_out_of_range(self):
        with pytest.raises(ValueError):
            subset_to_bitmask([32])
        with pytest.raises(ValueError):
            subset_to_bitmask([-1])

    def test_empty_subset_is_zero(self):
        assert subset_to_bitmask([]) == 0

    @given(st.sets(st.integers(0, 31), max_size=32))
    def test_roundtrip(self, codes):
        assert bitmask_to_subset(subset_to_bitmask(codes)) == frozenset(codes)


class TestMembershipVector:
    def test_table_matches_scalar_test(self):
        mask = subset_to_bitmask([1, 4, 7])
        table = bitmask_membership_vector(mask, 10)
        assert table.tolist() == [
            bitmask_contains(mask, code) for code in range(10)
        ]

    def test_table_length(self):
        table = bitmask_membership_vector(0b1, 5)
        assert table.shape == (5,)
        assert table.dtype == bool
